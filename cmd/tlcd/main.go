// Command tlcd serves the paper's evaluation as an HTTP API: POST a
// (design, benchmark, options) configuration to /v1/runs and get back the
// same run record a local tlcbench invocation would produce — byte-identical
// results, content-addressed caching, coalescing of identical in-flight
// requests, and explicit backpressure when the worker pool is saturated.
//
//	tlcd -addr :8080 -workers 8 -queue 32 -ckptdir /var/cache/tlc
//
// SIGINT/SIGTERM drain gracefully: intake stops (healthz flips to 503, new
// runs get 503), queued and executing runs finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"tlc"
	"tlc/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", runtime.NumCPU(), "concurrent simulation workers")
		queue      = flag.Int("queue", 0, "queued-run bound before 429s (default 4x workers)")
		cacheSize  = flag.Int("cache", 4096, "result cache entries")
		ckptdir    = flag.String("ckptdir", "", "checkpoint directory (adds a persistent warm-state tier)")
		timeout    = flag.Duration("timeout", 5*time.Minute, "default per-request deadline")
		maxTimeout = flag.Duration("max-timeout", 30*time.Minute, "cap on client-requested deadlines")
		drainWait  = flag.Duration("drain", 2*time.Minute, "shutdown drain bound")
		seed       = flag.Int64("seed", 1, "base options seed for figure endpoints")
		quick      = flag.Bool("quick", false, "quick base options for figure endpoints (shorter runs)")
	)
	flag.Parse()

	base := tlc.DefaultOptions()
	base.Seed = *seed
	if *quick {
		base.WarmInstructions = 2_000_000
		base.RunInstructions = 200_000
	}

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Checkpoints:    tlc.NewCheckpointStore(0, *ckptdir),
		BaseOptions:    base,
	})

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("tlcd listening on %s (%d workers, queue %d)", *addr, *workers, queueOr(*queue, 4**workers))
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("tlcd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("tlcd: draining (bound %v)", *drainWait)
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Stop intake first so in-flight HTTP waiters get their answers, then
	// close the listener and let active handlers finish.
	drainErr := srv.Drain(dctx)
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("tlcd: http shutdown: %v", err)
	}
	if drainErr != nil {
		log.Fatalf("tlcd: drain: %v", drainErr)
	}
	fmt.Println("tlcd: drained cleanly")
}

// queueOr mirrors server.New's queue default for the startup log line.
func queueOr(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}
