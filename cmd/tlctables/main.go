// Command tlctables regenerates every table and figure of the paper's
// evaluation section (see the experiment index in DESIGN.md):
//
//	tlctables            # standard scaled runs (2 M timed instructions)
//	tlctables -long      # 10x longer timed runs
//	tlctables -quick     # fast sanity pass (200 K timed instructions)
//	tlctables -par 8     # simulation parallelism
//	tlctables -v         # per-run wall-clock progress on stderr
//	tlctables -only fig5 # one experiment: table1|table2|table6|table7|
//	                     # table8|table9|fig3|fig5|fig6|fig7|fig8|contention
//	tlctables -ckptdir ~/.tlc-ckpt   # reuse warm state across invocations
//	tlctables -sample 50             # sampled runs; figures gain ± columns
//	tlctables -metrics metrics.json  # full registry dump for every run
//	tlctables -only contention -bench mcf -sharing producer-consumer
//	                     # CMP contention figure: cycles + coherence traffic
//	                     # vs core count (1, 2, 4) on all six designs
//
// Simulation runs are deterministic and independent per (design,
// benchmark) key, so stdout is byte-identical for every -par value;
// parallelism only changes wall-clock time (progress lines go to stderr).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"tlc"
	"tlc/internal/cliopt"
	"tlc/internal/experiments"
)

func main() {
	long := flag.Bool("long", false, "run 10x longer timed intervals")
	quick := flag.Bool("quick", false, "fast sanity pass (200K timed instructions)")
	par := flag.Int("par", runtime.NumCPU(), "simulation parallelism")
	verbose := flag.Bool("v", false, "per-run wall-clock progress on stderr")
	only := flag.String("only", "", "run a single experiment (e.g. fig5, table9, contention)")
	seed := flag.Int64("seed", 1, "workload seed")
	bench := flag.String("bench", "mcf", "benchmark for the contention figure")
	accel := cliopt.Register()
	flag.Parse()

	opt := tlc.DefaultOptions()
	opt.Seed = *seed
	if *long {
		opt.RunInstructions *= 10
	}
	if *quick {
		opt.RunInstructions = 200_000
		opt.WarmInstructions = 2_000_000
	}
	if err := accel.Apply(&opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	s := experiments.NewSuite(opt)
	if *verbose {
		s.OnRun = func(ev experiments.RunEvent) {
			fmt.Fprintf(os.Stderr, "  %-10v %-8s %8v\n", ev.Design, ev.Benchmark, ev.Wall.Round(time.Millisecond))
		}
	}

	static := map[string]func() string{
		"table1": func() string { return experiments.Table1().String() },
		"table2": func() string { return experiments.Table2().String() },
		"table7": func() string { return experiments.Table7().String() },
		"table8": func() string { return experiments.Table8().String() },
		"fig3":   func() string { return experiments.Figure3().String() },
	}
	simulated := map[string]func() string{
		"table6": func() string { return s.Table6().String() },
		"table9": func() string { return s.Table9().String() },
		"fig5":   func() string { return s.Figure5().String() },
		"fig6":   func() string { return s.Figure6().String() },
		"fig7":   func() string { return s.Figure7().String() },
		"fig8":   func() string { return s.Figure8().String() },
		// The contention figure runs its own (design x core-count) grid —
		// core counts vary per cell, which the per-options suite cannot
		// cache — so it bypasses s and needs no prefetch.
		"contention": func() string {
			t, err := experiments.Contention(opt, tlc.Designs(), *bench,
				experiments.ContentionCoreCounts(), *par)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return t.String()
		},
	}

	if *only != "" {
		name := strings.ToLower(*only)
		if fn, ok := static[name]; ok {
			fmt.Println(fn())
			return
		}
		fn, ok := simulated[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
			os.Exit(2)
		}
		if err := prefetchFor(s, name, *par); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(fn())
		if err := accel.WriteMetrics(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	order := []string{"table1", "table2", "fig3", "table7", "table8"}
	for _, name := range order {
		fmt.Println(static[name]())
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "simulating %d benchmarks x 6 designs (%d timed instructions each, par=%d)...\n",
		len(tlc.Benchmarks()), opt.RunInstructions, *par)
	if err := s.RunAll(tlc.Designs(), tlc.Benchmarks(), *par); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m := s.Metrics()
	fmt.Fprintf(os.Stderr, "simulation done in %v (%d runs, %v of simulation)\n\n",
		time.Since(start).Round(time.Second), m.Simulated, m.SimWall.Round(time.Second))

	for _, name := range []string{"table6", "fig5", "fig6", "table9", "fig7", "fig8", "contention"} {
		fmt.Println(simulated[name]())
	}
	if err := accel.WriteMetrics(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// prefetchFor warms the cache with just the runs one experiment needs.
func prefetchFor(s *experiments.Suite, name string, par int) error {
	switch name {
	case "table6", "table9", "fig6":
		return s.RunAll([]tlc.Design{tlc.DesignTLC, tlc.DesignDNUCA}, tlc.Benchmarks(), par)
	case "fig5":
		return s.RunAll([]tlc.Design{tlc.DesignSNUCA2, tlc.DesignDNUCA, tlc.DesignTLC}, tlc.Benchmarks(), par)
	case "fig7":
		return s.RunAll(tlc.TLCFamily(), tlc.Benchmarks(), par)
	case "fig8":
		return s.RunAll(append([]tlc.Design{tlc.DesignSNUCA2}, tlc.TLCFamily()...), tlc.Benchmarks(), par)
	}
	return nil
}
