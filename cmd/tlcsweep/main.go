// Command tlcsweep explores the design space beyond the paper's family:
// memory-latency sensitivity, the banked-DRAM substrate, seed robustness,
// and the transmission-line geometry acceptance region.
//
//	tlcsweep -memory        # execution time vs memory model (flat vs DRAM)
//	tlcsweep -seeds         # seed robustness of the headline comparisons
//	tlcsweep -geometry      # width x length signal-integrity acceptance
//	tlcsweep -bench mcf     # benchmark for the simulation sweeps
//	tlcsweep -par 8         # simulation parallelism
//	tlcsweep -quick         # shorter runs (tlctables -quick lengths)
//	tlcsweep -ckptdir DIR   # persist warm-state checkpoints across runs
//	tlcsweep -metrics FILE  # full registry dump for every simulated run
//	tlcsweep -remote ADDR   # run the sweeps against a tlcd server
//
// All simulation sweeps share one warm-state checkpoint store: the memory
// sweep's flat and banked-DRAM runs warm identically (warm-up is functional),
// and the seed sweep shares one warm prefix across its seeds, so each
// (design, benchmark) pair warms at most once per invocation.
//
// Simulation runs are deterministic and independent, so output is
// byte-identical for every -par value: workers fill result slots keyed by
// grid position and rendering stays serial. The same holds across -remote:
// a tlcd server executes the identical deterministic simulations, the
// client reconstructs the identical tlc.Result values, and the sweeps
// render through the same code — local and remote output match byte for
// byte (the CI service-e2e job asserts exactly this).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sync"

	"tlc"
	"tlc/internal/client"
	"tlc/internal/cliopt"
	"tlc/internal/experiments"
	"tlc/internal/report"
	"tlc/internal/tline"
)

var par = flag.Int("par", runtime.NumCPU(), "simulation parallelism")

// sweepOptions is the base configuration every simulation sweep starts
// from: the accelerator flags applied plus the invocation-wide checkpoint
// store, so warm state is shared wherever the keys allow.
var sweepOptions func() tlc.Options

// runResult executes one (design, benchmark, options) run — in process by
// default, against a tlcd server under -remote. Sweeps call it
// concurrently (bounded by -par) and render serially from the collected
// results, so the two paths produce byte-identical output.
var runResult func(d tlc.Design, bench string, opt tlc.Options) (tlc.Result, error)

func main() {
	bench := flag.String("bench", "mcf", "benchmark for simulation sweeps")
	memoryF := flag.Bool("memory", false, "flat vs banked-DRAM memory sweep")
	seedsF := flag.Bool("seeds", false, "seed robustness sweep")
	geometryF := flag.Bool("geometry", false, "transmission-line geometry acceptance")
	quick := flag.Bool("quick", false, "shorter runs: 2M warm / 200K timed instructions")
	remote := flag.String("remote", "", "run simulations on a tlcd server at this base URL")
	accel := cliopt.Register()
	flag.Parse()

	store := tlc.NewCheckpointStore(0, accel.CkptDir)
	sweepOptions = func() tlc.Options {
		opt := tlc.DefaultOptions()
		if *quick {
			opt.WarmInstructions = 2_000_000
			opt.RunInstructions = 200_000
		}
		accel.Apply(&opt)
		opt.Checkpoints = store
		return opt
	}

	if *remote != "" {
		runResult = remoteRunner(*remote)
	} else {
		runResult = localRunner()
	}

	any := false
	if *memoryF {
		memorySweep(*bench)
		any = true
	}
	if *seedsF {
		seedSweep(*bench)
		any = true
	}
	if *geometryF {
		geometrySweep()
		any = true
	}
	if !any {
		memorySweep(*bench)
		seedSweep(*bench)
		geometrySweep()
	}
	// Every local sweep's Options came from sweepOptions (Apply), so one
	// dump collects across all suites of the invocation. (Remote runs
	// execute on the server; -metrics collects nothing there.)
	if err := accel.WriteMetrics(); err != nil {
		log.Fatal(err)
	}
}

// localRunner executes runs in process through per-options suites: one
// suite per distinct option set (a suite keys its run cache by design and
// benchmark only), all sharing the invocation's checkpoint store via
// sweepOptions.
func localRunner() func(tlc.Design, string, tlc.Options) (tlc.Result, error) {
	var mu sync.Mutex
	suites := make(map[string]*experiments.Suite)
	return func(d tlc.Design, bench string, opt tlc.Options) (tlc.Result, error) {
		key := opt.ContentKey()
		mu.Lock()
		s, ok := suites[key]
		if !ok {
			s = experiments.NewSuite(opt)
			suites[key] = s
		}
		mu.Unlock()
		return s.RunErr(d, bench)
	}
}

// remoteRunner executes runs on a tlcd server. Identical configurations
// coalesce and cache server-side; the returned records embed the complete
// tlc.Result, so the sweeps render exactly what a local run produces.
func remoteRunner(base string) func(tlc.Design, string, tlc.Options) (tlc.Result, error) {
	c := client.New(base, &http.Client{})
	if err := c.Health(context.Background()); err != nil {
		log.Fatalf("tlcsweep: -remote %s: %v", base, err)
	}
	return func(d tlc.Design, bench string, opt tlc.Options) (tlc.Result, error) {
		return c.Result(context.Background(), d, bench, opt)
	}
}

// grid runs fn over n points with -par-bounded concurrency; results land
// by index so rendering order is independent of completion order.
func grid(n int, fn func(i int)) {
	sem := make(chan struct{}, max(1, *par))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

func memorySweep(bench string) {
	designs := []tlc.Design{tlc.DesignSNUCA2, tlc.DesignDNUCA, tlc.DesignTLC}
	flatOpt := sweepOptions()
	drOpt := flatOpt
	drOpt.UseDRAM = true

	// Both memory models' grids fill concurrently; the table renders
	// serially from the result slots.
	type cell struct {
		res tlc.Result
		err error
	}
	cells := make([]cell, 2*len(designs))
	grid(len(cells), func(i int) {
		opt := flatOpt
		if i >= len(designs) {
			opt = drOpt
		}
		res, err := runResult(designs[i%len(designs)], bench, opt)
		cells[i] = cell{res, err}
	})
	for _, c := range cells {
		if c.err != nil {
			log.Fatal(c.err)
		}
	}

	t := report.NewTable(fmt.Sprintf("Memory-model sensitivity (%s)", bench),
		"Design", "Flat 300 (cycles)", "Banked DRAM (cycles)", "Ratio")
	for i, d := range designs {
		fr := cells[i].res
		br := cells[i+len(designs)].res
		t.AddRow(d.String(), float64(fr.Cycles), float64(br.Cycles),
			float64(br.Cycles)/float64(fr.Cycles))
	}
	fmt.Println(t)
	fmt.Println("The cache-design comparison should survive the memory model;")
	fmt.Println("large ratios here would mean conclusions hinge on the flat 300.")
	fmt.Println()
}

func seedSweep(bench string) {
	seeds := []int64{1, 2, 3, 5, 8}
	designs := []tlc.Design{tlc.DesignSNUCA2, tlc.DesignDNUCA, tlc.DesignTLC}

	// Mirror tlc.RunSeeds: the warm stream is pinned to the first seed so
	// every seed measures from identical warm state (one warm-up per
	// design, via the shared checkpoint store — or the server's, under
	// -remote); the timed stream reseeds per run. Per-seed results are
	// summarized with tlc.SummarizeSeeds in seed order, so the statistics
	// match RunSeeds bit for bit.
	type cell struct {
		res tlc.Result
		err error
	}
	cells := make([]cell, len(designs)*len(seeds))
	grid(len(cells), func(i int) {
		opt := sweepOptions()
		opt.WarmSeed = seeds[0]
		opt.Seed = seeds[i%len(seeds)]
		res, err := runResult(designs[i/len(seeds)], bench, opt)
		cells[i] = cell{res, err}
	})

	t := report.NewTable(fmt.Sprintf("Seed robustness over %v (%s)", seeds, bench),
		"Design", "Cycles mean", "Cycles spread", "Lookup mean", "Lookup spread")
	for i, d := range designs {
		cs := make([]float64, len(seeds))
		ls := make([]float64, len(seeds))
		for j := range seeds {
			c := cells[i*len(seeds)+j]
			if c.err != nil {
				log.Fatal(c.err)
			}
			cs[j] = float64(c.res.Cycles)
			ls[j] = c.res.MeanLookup
		}
		cyc, lookup := tlc.SummarizeSeeds(cs), tlc.SummarizeSeeds(ls)
		t.AddRow(d.String(), cyc.Mean, fmt.Sprintf("%.2f%%", cyc.Spread()*100),
			lookup.Mean, fmt.Sprintf("%.2f%%", lookup.Spread()*100))
	}
	fmt.Println(t)
}

func geometrySweep() {
	t := report.NewTable("Geometry acceptance with shielding analysis (S=W, H=1.75um, T=3um)",
		"W (um)", "1.3cm amplitude", "xtalk shielded", "xtalk bare", "accept shielded", "accept bare", "max bare length")
	for _, w := range []float64{1.5, 2.0, 2.5, 3.0, 3.5} {
		g := tline.Geometry{WidthUM: w, SpacingUM: w, HeightUM: 1.75, ThicknessUM: 3.0, LengthCM: 1.3}
		n := tline.AnalyzeNoise(g)
		t.AddRow(w, n.AmplitudeFrac, n.CrosstalkShielded, n.CrosstalkUnshielded,
			fmt.Sprintf("%v", n.OKShielded), fmt.Sprintf("%v", n.OKUnshielded),
			unshieldedMax(g))
	}
	fmt.Println(t)
	fmt.Println("The alternating power/ground shields (Section 3) are what make")
	fmt.Println("centimeter-scale lines viable: bare layouts fail on coupled noise")
	fmt.Println("well short of the floorplan's 0.9-1.3 cm runs.")
}

// unshieldedMax formats the longest viable bare run, or "none".
func unshieldedMax(g tline.Geometry) string {
	max := tline.MaxUnshieldedLengthCM(g)
	if max == 0 {
		return "none"
	}
	return fmt.Sprintf("%.2f cm", max)
}
