// Command tlcsweep explores the design space beyond the paper's family:
// memory-latency sensitivity, the banked-DRAM substrate, seed robustness,
// and the transmission-line geometry acceptance region.
//
//	tlcsweep -memory        # execution time vs memory model (flat vs DRAM)
//	tlcsweep -seeds         # seed robustness of the headline comparisons
//	tlcsweep -geometry      # width x length signal-integrity acceptance
//	tlcsweep -contention    # CMP: cycles + coherence traffic vs core count
//	tlcsweep -bench mcf     # benchmark for the simulation sweeps
//	tlcsweep -par 8         # simulation parallelism (local execution)
//	tlcsweep -quick         # shorter runs (tlctables -quick lengths)
//	tlcsweep -ckptdir DIR   # persist warm-state checkpoints across runs
//	tlcsweep -metrics FILE  # full registry dump for every simulated run
//	tlcsweep -remote ADDR   # run the sweeps against a tlcd server or fleet
//
// All simulation sweeps share one warm-state checkpoint store: the memory
// sweep's flat and banked-DRAM runs warm identically (warm-up is functional),
// and the seed sweep shares one warm prefix across its seeds, so each
// (design, benchmark) pair warms at most once per invocation.
//
// Simulation runs are deterministic and independent, so output is
// byte-identical for every -par value: workers fill result slots keyed by
// grid position and rendering stays serial. The same holds across -remote:
// each sweep's grid goes up as one POST /v1/sweeps and streams back as
// NDJSON, points landing in result slots by index as they complete — the
// server (or a fleet coordinator fanning the grid across workers) executes
// the identical deterministic simulations, and rendering is the same serial
// code, so local, single-server, and fleet output match byte for byte (the
// CI service-e2e and fleet-e2e jobs assert exactly this).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"tlc"
	"tlc/internal/api"
	"tlc/internal/client"
	"tlc/internal/cliopt"
	"tlc/internal/experiments"
	"tlc/internal/report"
	"tlc/internal/tline"
)

var par = flag.Int("par", runtime.NumCPU(), "simulation parallelism (local execution)")

var jsonOut = flag.String("json", "", `write sweep timing JSON to FILE ("-" for stdout): per-grid-point wall times plus lane-sharing stats`)

// sweepOptions is the base configuration every simulation sweep starts
// from: the accelerator flags applied plus the invocation-wide checkpoint
// store, so warm state is shared wherever the keys allow.
var sweepOptions func() tlc.Options

// runSpec is one grid point: the full configuration of one simulation.
type runSpec struct {
	design tlc.Design
	bench  string
	opt    tlc.Options
}

// runGrid executes a sweep grid and returns results, full metric-registry
// snapshots, and per-point host wall times (milliseconds) in spec order —
// in process by default (bounded by -par), as one streaming POST /v1/sweeps
// under -remote. Results land by index, so rendering is independent of
// completion order and byte-identical across all execution paths; the
// snapshots carry counters the flat Result does not (the contention sweep
// reads coherence traffic from them), and wall times are local measurements
// (or the server's, under -remote) feeding only the -json timing report,
// never the rendered tables.
var runGrid func(specs []runSpec) ([]tlc.Result, []tlc.MetricsSnapshot, []float64, error)

// timing collects the -json report: per-grid-point wall times (so
// lane-grouping wins are visible point by point, not just in the
// aggregate) plus the lane-sharing stats of the local warm passes.
type timing struct {
	mu    sync.Mutex
	Grids []gridJSON `json:"grids"`
	Lanes lanesJSON  `json:"lanes"`
}

type gridJSON struct {
	Sweep string `json:"sweep"`
	// WallMS is the grid's elapsed host wall time; the per-point walls
	// overlap under -par, so they sum to more than this.
	WallMS float64     `json:"wall_ms"`
	Points []pointJSON `json:"points"`
}

type pointJSON struct {
	Index  int     `json:"index"`
	Design string  `json:"design"`
	Bench  string  `json:"bench"`
	Seed   int64   `json:"seed"`
	WallMS float64 `json:"wall_ms"`
	Cycles uint64  `json:"cycles"`
}

type lanesJSON struct {
	Groups        uint64 `json:"groups"`
	LanesWarmed   uint64 `json:"lanes_warmed"`
	BatchesShared uint64 `json:"batches_shared"`
	ScalarPoints  uint64 `json:"scalar_points"`
}

var timings = &timing{}

// recordGrid appends one executed grid to the -json report.
func (t *timing) recordGrid(sweep string, specs []runSpec, results []tlc.Result, walls []float64, elapsed time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	g := gridJSON{Sweep: sweep, WallMS: float64(elapsed.Microseconds()) / 1000}
	for i, s := range specs {
		g.Points = append(g.Points, pointJSON{
			Index:  i,
			Design: s.design.String(),
			Bench:  s.bench,
			Seed:   s.opt.Seed,
			WallMS: walls[i],
			Cycles: results[i].Cycles,
		})
	}
	t.Grids = append(t.Grids, g)
}

// write emits the report to -json's target.
func (t *timing) write(path string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	buf, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

func main() {
	bench := flag.String("bench", "mcf", "benchmark for simulation sweeps")
	memoryF := flag.Bool("memory", false, "flat vs banked-DRAM memory sweep")
	seedsF := flag.Bool("seeds", false, "seed robustness sweep")
	geometryF := flag.Bool("geometry", false, "transmission-line geometry acceptance")
	contentionF := flag.Bool("contention", false, "CMP contention sweep: cycles and coherence traffic vs core count")
	quick := flag.Bool("quick", false, "shorter runs: 2M warm / 200K timed instructions")
	remote := flag.String("remote", "", "run simulations on a tlcd server or fleet coordinator at this base URL")
	accel := cliopt.Register()
	flag.Parse()

	store := tlc.NewCheckpointStore(0, accel.CkptDir)
	sweepOptions = func() tlc.Options {
		opt := tlc.DefaultOptions()
		if *quick {
			opt.WarmInstructions = 2_000_000
			opt.RunInstructions = 200_000
		}
		if err := accel.Apply(&opt); err != nil {
			log.Fatal(err)
		}
		opt.Checkpoints = store
		return opt
	}

	if *remote != "" {
		runGrid = remoteGrid(*remote)
	} else {
		runGrid = localGrid()
	}

	any := false
	if *memoryF {
		memorySweep(*bench)
		any = true
	}
	if *seedsF {
		seedSweep(*bench)
		any = true
	}
	if *geometryF {
		geometrySweep()
		any = true
	}
	if *contentionF {
		contentionSweep(*bench)
		any = true
	}
	if !any {
		memorySweep(*bench)
		seedSweep(*bench)
		geometrySweep()
	}
	// Every local sweep's Options came from sweepOptions (Apply), so one
	// dump collects across all suites of the invocation. (Remote runs
	// execute on the server; -metrics collects nothing there.)
	if err := accel.WriteMetrics(); err != nil {
		log.Fatal(err)
	}
	if *jsonOut != "" {
		if err := timings.write(*jsonOut); err != nil {
			log.Fatal(err)
		}
	}
}

// localGrid executes grids in process through per-options suites: one
// suite per distinct option set (a suite keys its run cache by design and
// benchmark only), all sharing the invocation's checkpoint store via
// sweepOptions. Concurrency is bounded by -par.
func localGrid() func([]runSpec) ([]tlc.Result, []tlc.MetricsSnapshot, []float64, error) {
	var mu sync.Mutex
	suites := make(map[string]*experiments.Suite)
	planner := experiments.NewLanePlanner()
	run := func(s runSpec) (tlc.Result, tlc.MetricsSnapshot, error) {
		key := s.opt.ContentKey()
		mu.Lock()
		suite, ok := suites[key]
		if !ok {
			suite = experiments.NewSuite(s.opt)
			suites[key] = suite
		}
		mu.Unlock()
		res, err := suite.RunErr(s.design, s.bench)
		if err != nil {
			return res, nil, err
		}
		snap, _ := suite.RunMetrics(s.design, s.bench)
		return res, snap, nil
	}
	return func(specs []runSpec) ([]tlc.Result, []tlc.MetricsSnapshot, []float64, error) {
		// Lane phase: grid points sharing a workload stream (every spec
		// here shares the invocation's checkpoint store) warm once through
		// a lane-parallel pass; the runs below then restore instead of
		// re-warming. Results are pinned bit-identical either way.
		points := make([]experiments.GridPoint, len(specs))
		for i, s := range specs {
			points[i] = experiments.GridPoint{Design: s.design, Bench: s.bench, Opt: s.opt}
		}
		mu.Lock()
		groups := planner.Plan(points)
		timings.Lanes.ScalarPoints += uint64(planner.ScalarPoints())
		for i := range groups {
			g := &groups[i]
			if len(g.Designs) < 2 {
				continue
			}
			if st, err := tlc.WarmLanes(g.Designs, g.Bench, g.Opt); err == nil && st.Lanes > 0 {
				timings.Lanes.Groups++
				timings.Lanes.LanesWarmed += uint64(st.Lanes)
				timings.Lanes.BatchesShared += st.Batches
			}
		}
		mu.Unlock()

		results := make([]tlc.Result, len(specs))
		snaps := make([]tlc.MetricsSnapshot, len(specs))
		walls := make([]float64, len(specs))
		errs := make([]error, len(specs))
		grid(len(specs), func(i int) {
			start := time.Now()
			results[i], snaps[i], errs[i] = run(specs[i])
			walls[i] = float64(time.Since(start).Microseconds()) / 1000
		})
		for _, err := range errs {
			if err != nil {
				return nil, nil, nil, err
			}
		}
		return results, snaps, walls, nil
	}
}

// remoteGrid executes grids on a tlcd server or fleet coordinator: one
// streaming sweep request per grid, NDJSON points filling result slots by
// index as they complete. Identical configurations coalesce and cache
// server-side; records embed the complete tlc.Result, so the sweeps render
// exactly what a local run produces.
func remoteGrid(base string) func([]runSpec) ([]tlc.Result, []tlc.MetricsSnapshot, []float64, error) {
	c := client.New(base, &http.Client{})
	if err := c.Health(context.Background()); err != nil {
		log.Fatalf("tlcsweep: -remote %s: %v", base, err)
	}
	return func(specs []runSpec) ([]tlc.Result, []tlc.MetricsSnapshot, []float64, error) {
		sreq := api.SweepRequest{Points: make([]api.RunRequest, len(specs))}
		for i, s := range specs {
			sreq.Points[i] = api.RunRequest{
				Design:    s.design.String(),
				Benchmark: s.bench,
				Options:   api.FromOptions(s.opt),
			}
		}
		results := make([]tlc.Result, len(specs))
		snaps := make([]tlc.MetricsSnapshot, len(specs))
		walls := make([]float64, len(specs))
		got := 0
		err := c.Sweep(context.Background(), sreq, func(p api.SweepPoint) error {
			if p.Index < 0 || p.Index >= len(specs) {
				return fmt.Errorf("sweep point index %d outside grid of %d", p.Index, len(specs))
			}
			s := specs[p.Index]
			if p.Error != "" {
				return fmt.Errorf("sweep point %s/%s: %s", s.design, s.bench, p.Error)
			}
			res, err := p.Record.ToResult()
			if err != nil {
				return fmt.Errorf("sweep point %s/%s: %w", s.design, s.bench, err)
			}
			results[p.Index] = res
			snaps[p.Index] = p.Record.Metrics
			walls[p.Index] = p.Record.WallMS
			got++
			return nil
		})
		if err != nil {
			return nil, nil, nil, err
		}
		if got != len(specs) {
			return nil, nil, nil, fmt.Errorf("sweep stream ended after %d of %d points", got, len(specs))
		}
		return results, snaps, walls, nil
	}
}

// grid runs fn over n points with -par-bounded concurrency; results land
// by index so rendering order is independent of completion order.
func grid(n int, fn func(i int)) {
	sem := make(chan struct{}, max(1, *par))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

func memorySweep(bench string) {
	designs := []tlc.Design{tlc.DesignSNUCA2, tlc.DesignDNUCA, tlc.DesignTLC}
	flatOpt := sweepOptions()
	drOpt := flatOpt
	drOpt.UseDRAM = true

	// Both memory models' rows fill from one grid; the table renders
	// serially from the result slots.
	specs := make([]runSpec, 0, 2*len(designs))
	for i := 0; i < 2*len(designs); i++ {
		opt := flatOpt
		if i >= len(designs) {
			opt = drOpt
		}
		specs = append(specs, runSpec{designs[i%len(designs)], bench, opt})
	}
	start := time.Now()
	results, _, walls, err := runGrid(specs)
	if err != nil {
		log.Fatal(err)
	}
	timings.recordGrid("memory", specs, results, walls, time.Since(start))

	t := report.NewTable(fmt.Sprintf("Memory-model sensitivity (%s)", bench),
		"Design", "Flat 300 (cycles)", "Banked DRAM (cycles)", "Ratio")
	for i, d := range designs {
		fr := results[i]
		br := results[i+len(designs)]
		t.AddRow(d.String(), float64(fr.Cycles), float64(br.Cycles),
			float64(br.Cycles)/float64(fr.Cycles))
	}
	fmt.Println(t)
	fmt.Println("The cache-design comparison should survive the memory model;")
	fmt.Println("large ratios here would mean conclusions hinge on the flat 300.")
	fmt.Println()
}

func seedSweep(bench string) {
	seeds := []int64{1, 2, 3, 5, 8}
	designs := []tlc.Design{tlc.DesignSNUCA2, tlc.DesignDNUCA, tlc.DesignTLC}

	// Mirror tlc.RunSeeds: the warm stream is pinned to the first seed so
	// every seed measures from identical warm state (one warm-up per
	// design, via the shared checkpoint store — or the server's, under
	// -remote); the timed stream reseeds per run. Per-seed results are
	// summarized with tlc.SummarizeSeeds in seed order, so the statistics
	// match RunSeeds bit for bit.
	specs := make([]runSpec, 0, len(designs)*len(seeds))
	for i := 0; i < len(designs)*len(seeds); i++ {
		opt := sweepOptions()
		opt.WarmSeed = seeds[0]
		opt.Seed = seeds[i%len(seeds)]
		specs = append(specs, runSpec{designs[i/len(seeds)], bench, opt})
	}
	start := time.Now()
	results, _, walls, err := runGrid(specs)
	if err != nil {
		log.Fatal(err)
	}
	timings.recordGrid("seeds", specs, results, walls, time.Since(start))

	t := report.NewTable(fmt.Sprintf("Seed robustness over %v (%s)", seeds, bench),
		"Design", "Cycles mean", "Cycles spread", "Lookup mean", "Lookup spread")
	for i, d := range designs {
		cs := make([]float64, len(seeds))
		ls := make([]float64, len(seeds))
		for j := range seeds {
			res := results[i*len(seeds)+j]
			cs[j] = float64(res.Cycles)
			ls[j] = res.MeanLookup
		}
		cyc, lookup := tlc.SummarizeSeeds(cs), tlc.SummarizeSeeds(ls)
		t.AddRow(d.String(), cyc.Mean, fmt.Sprintf("%.2f%%", cyc.Spread()*100),
			lookup.Mean, fmt.Sprintf("%.2f%%", lookup.Spread()*100))
	}
	fmt.Println(t)
}

// contentionSweep renders the CMP contention figure through the sweep
// grid: all six designs at 1, 2, and 4 cores on one benchmark, with the
// sharing pattern taken from the -sharing flags. The grid goes through
// runGrid, so the figure computes identically in process and against a
// tlcd server or fleet (-remote); coherence traffic comes from the
// per-point metric snapshots, which the service embeds in its records.
func contentionSweep(bench string) {
	points := experiments.ContentionGrid(tlc.Designs(), experiments.ContentionCoreCounts())
	specs := make([]runSpec, len(points))
	for i, p := range points {
		opt := sweepOptions()
		opt.Cores = p.Cores
		specs[i] = runSpec{p.Design, bench, opt}
	}
	start := time.Now()
	results, snaps, walls, err := runGrid(specs)
	if err != nil {
		log.Fatal(err)
	}
	timings.recordGrid("contention", specs, results, walls, time.Since(start))

	for i := range points {
		points[i].Result = results[i]
		points[i].Metrics = snaps[i]
	}
	fmt.Println(experiments.ContentionTable(bench, points))
	fmt.Println("Slowdown normalizes each design's cycles to its own 1-core run: the")
	fmt.Println("cost of sharing the L2 — arbitration plus MSI coherence — as cores grow.")
	fmt.Println()
}

func geometrySweep() {
	t := report.NewTable("Geometry acceptance with shielding analysis (S=W, H=1.75um, T=3um)",
		"W (um)", "1.3cm amplitude", "xtalk shielded", "xtalk bare", "accept shielded", "accept bare", "max bare length")
	for _, w := range []float64{1.5, 2.0, 2.5, 3.0, 3.5} {
		g := tline.Geometry{WidthUM: w, SpacingUM: w, HeightUM: 1.75, ThicknessUM: 3.0, LengthCM: 1.3}
		n := tline.AnalyzeNoise(g)
		t.AddRow(w, n.AmplitudeFrac, n.CrosstalkShielded, n.CrosstalkUnshielded,
			fmt.Sprintf("%v", n.OKShielded), fmt.Sprintf("%v", n.OKUnshielded),
			unshieldedMax(g))
	}
	fmt.Println(t)
	fmt.Println("The alternating power/ground shields (Section 3) are what make")
	fmt.Println("centimeter-scale lines viable: bare layouts fail on coupled noise")
	fmt.Println("well short of the floorplan's 0.9-1.3 cm runs.")
}

// unshieldedMax formats the longest viable bare run, or "none".
func unshieldedMax(g tline.Geometry) string {
	max := tline.MaxUnshieldedLengthCM(g)
	if max == 0 {
		return "none"
	}
	return fmt.Sprintf("%.2f cm", max)
}
