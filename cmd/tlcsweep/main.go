// Command tlcsweep explores the design space beyond the paper's family:
// memory-latency sensitivity, the banked-DRAM substrate, seed robustness,
// and the transmission-line geometry acceptance region.
//
//	tlcsweep -memory        # execution time vs memory model (flat vs DRAM)
//	tlcsweep -seeds         # seed robustness of the headline comparisons
//	tlcsweep -geometry      # width x length signal-integrity acceptance
//	tlcsweep -bench mcf     # benchmark for the simulation sweeps
//	tlcsweep -par 8         # simulation parallelism
//	tlcsweep -ckptdir DIR   # persist warm-state checkpoints across runs
//	tlcsweep -metrics FILE  # full registry dump for every simulated run
//
// All simulation sweeps share one warm-state checkpoint store: the memory
// sweep's flat and banked-DRAM runs warm identically (warm-up is functional),
// and the seed sweep shares one warm prefix across its seeds, so each
// (design, benchmark) pair warms at most once per invocation.
//
// Simulation runs are deterministic and independent, so output is
// byte-identical for every -par value: workers fill result slots keyed by
// grid position and rendering stays serial.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"sync"

	"tlc"
	"tlc/internal/cliopt"
	"tlc/internal/experiments"
	"tlc/internal/report"
	"tlc/internal/tline"
)

var par = flag.Int("par", runtime.NumCPU(), "simulation parallelism")

// sweepOptions is the base configuration every simulation sweep starts
// from: the accelerator flags applied plus the invocation-wide checkpoint
// store, so warm state is shared wherever the keys allow.
var sweepOptions func() tlc.Options

func main() {
	bench := flag.String("bench", "mcf", "benchmark for simulation sweeps")
	memoryF := flag.Bool("memory", false, "flat vs banked-DRAM memory sweep")
	seedsF := flag.Bool("seeds", false, "seed robustness sweep")
	geometryF := flag.Bool("geometry", false, "transmission-line geometry acceptance")
	accel := cliopt.Register()
	flag.Parse()

	store := tlc.NewCheckpointStore(0, accel.CkptDir)
	sweepOptions = func() tlc.Options {
		opt := tlc.DefaultOptions()
		accel.Apply(&opt)
		opt.Checkpoints = store
		return opt
	}

	any := false
	if *memoryF {
		memorySweep(*bench)
		any = true
	}
	if *seedsF {
		seedSweep(*bench)
		any = true
	}
	if *geometryF {
		geometrySweep()
		any = true
	}
	if !any {
		memorySweep(*bench)
		seedSweep(*bench)
		geometrySweep()
	}
	// Every sweep's Options came from sweepOptions (Apply), so one dump
	// collects across all suites of the invocation.
	if err := accel.WriteMetrics(); err != nil {
		log.Fatal(err)
	}
}

func memorySweep(bench string) {
	designs := []tlc.Design{tlc.DesignSNUCA2, tlc.DesignDNUCA, tlc.DesignTLC}
	// One suite per memory model: a suite keys its run cache by (design,
	// benchmark), so distinct Options need distinct suites. RunAll fills
	// both grids in parallel; the table then renders from cache hits.
	flatOpt := sweepOptions()
	drOpt := flatOpt
	drOpt.UseDRAM = true
	flat := experiments.NewSuite(flatOpt)
	banked := experiments.NewSuite(drOpt)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, s := range []*experiments.Suite{flat, banked} {
		wg.Add(1)
		go func(i int, s *experiments.Suite) {
			defer wg.Done()
			errs[i] = s.RunAll(designs, []string{bench}, (*par+1)/2)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	t := report.NewTable(fmt.Sprintf("Memory-model sensitivity (%s)", bench),
		"Design", "Flat 300 (cycles)", "Banked DRAM (cycles)", "Ratio")
	for _, d := range designs {
		fr := flat.Run(d, bench)
		br := banked.Run(d, bench)
		t.AddRow(d.String(), float64(fr.Cycles), float64(br.Cycles),
			float64(br.Cycles)/float64(fr.Cycles))
	}
	fmt.Println(t)
	fmt.Println("The cache-design comparison should survive the memory model;")
	fmt.Println("large ratios here would mean conclusions hinge on the flat 300.")
	fmt.Println()
}

func seedSweep(bench string) {
	seeds := []int64{1, 2, 3, 5, 8}
	designs := []tlc.Design{tlc.DesignSNUCA2, tlc.DesignDNUCA, tlc.DesignTLC}

	type row struct {
		cyc, lookup tlc.SeedStats
		err         error
	}
	rows := make([]row, len(designs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, *par))
	for i, d := range designs {
		wg.Add(1)
		go func(i int, d tlc.Design) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cyc, lookup, _, err := tlc.RunSeeds(d, bench, sweepOptions(), seeds)
			rows[i] = row{cyc: cyc, lookup: lookup, err: err}
		}(i, d)
	}
	wg.Wait()

	t := report.NewTable(fmt.Sprintf("Seed robustness over %v (%s)", seeds, bench),
		"Design", "Cycles mean", "Cycles spread", "Lookup mean", "Lookup spread")
	for i, d := range designs {
		if rows[i].err != nil {
			log.Fatal(rows[i].err)
		}
		t.AddRow(d.String(), rows[i].cyc.Mean, fmt.Sprintf("%.2f%%", rows[i].cyc.Spread()*100),
			rows[i].lookup.Mean, fmt.Sprintf("%.2f%%", rows[i].lookup.Spread()*100))
	}
	fmt.Println(t)
}

func geometrySweep() {
	t := report.NewTable("Geometry acceptance with shielding analysis (S=W, H=1.75um, T=3um)",
		"W (um)", "1.3cm amplitude", "xtalk shielded", "xtalk bare", "accept shielded", "accept bare", "max bare length")
	for _, w := range []float64{1.5, 2.0, 2.5, 3.0, 3.5} {
		g := tline.Geometry{WidthUM: w, SpacingUM: w, HeightUM: 1.75, ThicknessUM: 3.0, LengthCM: 1.3}
		n := tline.AnalyzeNoise(g)
		t.AddRow(w, n.AmplitudeFrac, n.CrosstalkShielded, n.CrosstalkUnshielded,
			fmt.Sprintf("%v", n.OKShielded), fmt.Sprintf("%v", n.OKUnshielded),
			unshieldedMax(g))
	}
	fmt.Println(t)
	fmt.Println("The alternating power/ground shields (Section 3) are what make")
	fmt.Println("centimeter-scale lines viable: bare layouts fail on coupled noise")
	fmt.Println("well short of the floorplan's 0.9-1.3 cm runs.")
}

// unshieldedMax formats the longest viable bare run, or "none".
func unshieldedMax(g tline.Geometry) string {
	max := tline.MaxUnshieldedLengthCM(g)
	if max == 0 {
		return "none"
	}
	return fmt.Sprintf("%.2f cm", max)
}
