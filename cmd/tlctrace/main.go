// Command tlctrace captures synthetic benchmark traces to disk, inspects
// them, and replays them against a cache design:
//
//	tlctrace -capture gcc.trace -bench gcc -n 5000000
//	tlctrace -info gcc.trace
//	tlctrace -replay gcc.trace -design TLC -run 2000000
//	tlctrace -replay gcc.trace -design TLC -metrics metrics.json
//
// Captured traces replay deterministically, so every design sees
// byte-identical input; they also serve as an interchange point for
// reference streams produced outside this repository.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tlc/internal/config"
	"tlc/internal/cpu"
	"tlc/internal/l2"
	"tlc/internal/nuca"
	"tlc/internal/tlcache"
	"tlc/internal/trace"
	"tlc/internal/workload"
)

func main() {
	capture := flag.String("capture", "", "write a trace to this file")
	bench := flag.String("bench", "gcc", "benchmark to capture")
	n := flag.Uint64("n", 5_000_000, "instructions to capture")
	seed := flag.Int64("seed", 1, "workload seed")
	info := flag.String("info", "", "summarize a trace file")
	replay := flag.String("replay", "", "replay a trace against a design")
	design := flag.String("design", "TLC", "design for -replay")
	warmN := flag.Uint64("warm", 2_000_000, "warm-up instructions for -replay")
	runN := flag.Uint64("run", 2_000_000, "timed instructions for -replay")
	metricsF := flag.String("metrics", "",
		"with -replay: dump the design's full metric registry as JSON to this file ('-' for stdout)")
	flag.Parse()

	switch {
	case *capture != "":
		doCapture(*capture, *bench, *n, *seed)
	case *info != "":
		doInfo(*info)
	case *replay != "":
		doReplay(*replay, *design, *warmN, *runN, *metricsF)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doCapture(path, bench string, n uint64, seed int64) {
	spec, ok := workload.SpecByName(bench)
	if !ok {
		fatal("unknown benchmark %q", bench)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	count, err := trace.Capture(f, workload.New(spec, seed), n)
	if err != nil {
		fatal("capture: %v", err)
	}
	fi, _ := f.Stat()
	fmt.Printf("captured %d instructions of %s to %s (%.2f bytes/instr)\n",
		count, bench, path, float64(fi.Size())/float64(count))
}

func doInfo(path string) {
	r := open(path)
	s := r.Summarize()
	fmt.Printf("instructions   %d\n", s.Instructions)
	fmt.Printf("memory ops     %d (%.1f%%)\n", s.MemOps, 100*float64(s.MemOps)/float64(s.Instructions))
	fmt.Printf("stores         %d\n", s.Stores)
	fmt.Printf("dependent lds  %d\n", s.DepLoads)
	fmt.Printf("mispredicts    %d\n", s.Mispredicts)
	fmt.Printf("unique blocks  %d (%.1f MB footprint touched)\n",
		s.UniqueBlocks, float64(s.UniqueBlocks)*64/1024/1024)
}

func doReplay(path, designName string, warmN, runN uint64, metricsPath string) {
	r := open(path)
	sys := config.DefaultSystem()
	var c l2.Instrumented
	switch {
	case strings.EqualFold(designName, "SNUCA2"):
		c = nuca.NewSNUCA(sys.MemoryLatency)
	case strings.EqualFold(designName, "DNUCA"):
		c = nuca.NewDNUCA(sys.MemoryLatency)
	default:
		var d config.Design = -1
		for _, cand := range config.TLCFamily() {
			if strings.EqualFold(cand.String(), designName) {
				d = cand
			}
		}
		if d < 0 {
			fatal("unknown design %q", designName)
		}
		c = tlcache.New(d, sys.MemoryLatency)
	}
	core := cpu.New(sys, c)
	core.RegisterMetrics(c.Metrics())
	core.Warm(r, warmN)
	res := core.Run(r, runN)
	st := c.L2Stats()
	fmt.Printf("design        %s\n", designName)
	fmt.Printf("instructions  %d\n", res.Instructions)
	fmt.Printf("cycles        %d (IPC %.3f)\n", res.Cycles, res.IPC())
	fmt.Printf("L2 loads      %d, stores %d\n", st.Loads.Value(), st.Stores.Value())
	fmt.Printf("misses/1K     %.3f\n", st.MissesPer1K(res.Instructions))
	fmt.Printf("mean lookup   %.2f cycles (%.1f%% predictable)\n",
		st.Lookup.Mean(), st.PredictablePct())
	if metricsPath != "" {
		w := os.Stdout
		if metricsPath != "-" {
			f, err := os.Create(metricsPath)
			if err != nil {
				fatal("%v", err)
			}
			defer f.Close()
			w = f
		}
		if err := c.Metrics().Snapshot(res.Cycles).WriteJSON(w); err != nil {
			fatal("metrics: %v", err)
		}
	}
}

func open(path string) *trace.Reader {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal("%v", err)
	}
	return r
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
