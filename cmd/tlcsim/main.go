// Command tlcsim runs one benchmark on one cache design and prints the
// full statistics block:
//
//	tlcsim -design TLC -bench gcc
//	tlcsim -design DNUCA -bench mcf -run 5000000
//	tlcsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tlc"
)

func main() {
	design := flag.String("design", "TLC", "cache design: SNUCA2, DNUCA, TLC, TLCopt1000, TLCopt500, TLCopt350")
	bench := flag.String("bench", "gcc", "benchmark name (see -list)")
	runN := flag.Uint64("run", 0, "timed instructions (default: standard 2M)")
	warmN := flag.Uint64("warm", 0, "warm-up instructions (default: automatic)")
	seed := flag.Int64("seed", 1, "workload seed")
	list := flag.Bool("list", false, "list designs and benchmarks")
	flag.Parse()

	if *list {
		names := make([]string, 0, 6)
		for _, d := range tlc.Designs() {
			names = append(names, d.String())
		}
		fmt.Println("designs:   ", strings.Join(names, ", "))
		fmt.Println("benchmarks:", strings.Join(tlc.Benchmarks(), ", "))
		return
	}

	d, ok := parseDesign(*design)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown design %q (try -list)\n", *design)
		os.Exit(2)
	}
	opt := tlc.DefaultOptions()
	opt.Seed = *seed
	if *runN > 0 {
		opt.RunInstructions = *runN
	}
	opt.WarmInstructions = *warmN

	start := time.Now()
	res, err := tlc.Run(d, *bench, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	fmt.Printf("design            %v\n", res.Design)
	fmt.Printf("benchmark         %s\n", res.Benchmark)
	fmt.Printf("instructions      %d\n", res.Instructions)
	fmt.Printf("cycles            %d\n", res.Cycles)
	fmt.Printf("IPC               %.3f\n", res.IPC)
	fmt.Printf("L2 loads          %d\n", res.L2Loads)
	fmt.Printf("L2 stores         %d\n", res.L2Stores)
	fmt.Printf("misses/1K instr   %.3f\n", res.MissesPer1K)
	fmt.Printf("mean lookup       %.2f cycles\n", res.MeanLookup)
	fmt.Printf("predictable       %.1f%%\n", res.PredictablePct)
	fmt.Printf("banks/request     %.2f\n", res.BanksPerRequest)
	fmt.Printf("network power     %.1f mW\n", res.NetworkPowerW*1000)
	if res.LinkUtilization > 0 {
		fmt.Printf("link utilization  %.2f%%\n", res.LinkUtilization*100)
	}
	if res.Design == tlc.DesignDNUCA {
		fmt.Printf("close hits        %.1f%%\n", res.CloseHitPct)
		fmt.Printf("promotes/inserts  %.2f\n", res.PromotesPerInsert)
	}
	fmt.Printf("(simulated in %v)\n", elapsed)
}

func parseDesign(name string) (tlc.Design, bool) {
	for _, d := range tlc.Designs() {
		if strings.EqualFold(d.String(), name) {
			return d, true
		}
	}
	return 0, false
}
