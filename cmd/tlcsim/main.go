// Command tlcsim runs one or more benchmarks on one or more cache designs
// and prints the full statistics block, a compact grid, or JSON:
//
//	tlcsim -design TLC -bench gcc
//	tlcsim -design DNUCA -bench mcf -run 5000000
//	tlcsim -design all -bench all -par 8        # full grid, all cores
//	tlcsim -design TLC,DNUCA -bench gcc -json   # machine-readable results
//	tlcsim -bench gcc -ckptdir ~/.tlc-ckpt      # reuse warm state on disk
//	tlcsim -bench gcc -sample 50 -samplelen 2000  # sampled execution, ± CI
//	tlcsim -bench gcc -metrics metrics.json     # full registry dump per run
//	tlcsim -list
//
// Grid runs execute in parallel (deduplicated per key by the experiment
// engine) but results print in grid order, so output is byte-identical for
// every -par value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"tlc"
	"tlc/internal/cliopt"
	"tlc/internal/experiments"
)

// runJSON is the machine-readable headline record for one run.
type runJSON struct {
	Design          string  `json:"design"`
	Benchmark       string  `json:"benchmark"`
	Instructions    uint64  `json:"instructions"`
	Cycles          uint64  `json:"cycles"`
	IPC             float64 `json:"ipc"`
	L2Loads         uint64  `json:"l2_loads"`
	L2Stores        uint64  `json:"l2_stores"`
	MissesPer1K     float64 `json:"misses_per_1k"`
	MeanLookup      float64 `json:"mean_lookup_cycles"`
	PredictablePct  float64 `json:"predictable_pct"`
	BanksPerRequest float64 `json:"banks_per_request"`
	LinkUtilization float64 `json:"link_utilization"`
	NetworkPowerW   float64 `json:"network_power_w"`

	// Sampled-mode extras: 95% confidence half-widths and the sampling
	// plan. Zero (omitted) for full detailed runs.
	CyclesCI             float64 `json:"cycles_ci,omitempty"`
	MeanLookupCI         float64 `json:"mean_lookup_ci,omitempty"`
	MissesPer1KCI        float64 `json:"misses_per_1k_ci,omitempty"`
	SampleIntervals      int     `json:"sample_intervals,omitempty"`
	DetailedInstructions uint64  `json:"detailed_instructions,omitempty"`

	// Fast-tier extras: the fidelity tier and its committed calibration
	// envelope. Omitted on full-tier runs.
	Fidelity   string          `json:"fidelity,omitempty"`
	ErrorBound *tlc.ErrorBound `json:"error_bound,omitempty"`
}

func toJSON(r tlc.Result, fidelity string) runJSON {
	j := runJSON{
		Design:          r.Design.String(),
		Benchmark:       r.Benchmark,
		Instructions:    r.Instructions,
		Cycles:          r.Cycles,
		IPC:             r.IPC,
		L2Loads:         r.L2Loads,
		L2Stores:        r.L2Stores,
		MissesPer1K:     r.MissesPer1K,
		MeanLookup:      r.MeanLookup,
		PredictablePct:  r.PredictablePct,
		BanksPerRequest: r.BanksPerRequest,
		LinkUtilization: r.LinkUtilization,
		NetworkPowerW:   r.NetworkPowerW,
	}
	if fidelity == tlc.FidelityFast {
		j.Fidelity = fidelity
		j.ErrorBound = r.ErrorBound
	}
	return j
}

func toJSONSampled(sr tlc.SampledResult, fidelity string) runJSON {
	j := toJSON(sr.Result, fidelity)
	j.CyclesCI = sr.CyclesCI
	j.MeanLookupCI = sr.MeanLookupCI
	j.MissesPer1KCI = sr.MissesPer1KCI
	j.SampleIntervals = sr.Intervals
	j.DetailedInstructions = sr.DetailedInstructions
	return j
}

func main() {
	design := flag.String("design", "TLC", "cache design(s): comma-separated or 'all'")
	bench := flag.String("bench", "gcc", "benchmark name(s): comma-separated or 'all' (see -list)")
	runN := flag.Uint64("run", 0, "timed instructions (default: standard 2M)")
	warmN := flag.Uint64("warm", 0, "warm-up instructions (default: automatic)")
	seed := flag.Int64("seed", 1, "workload seed")
	par := flag.Int("par", runtime.NumCPU(), "simulation parallelism for grid runs")
	jsonF := flag.Bool("json", false, "emit results as JSON")
	list := flag.Bool("list", false, "list designs and benchmarks")
	accel := cliopt.Register()
	flag.Parse()

	if *list {
		names := make([]string, 0, 6)
		for _, d := range tlc.Designs() {
			names = append(names, d.String())
		}
		fmt.Println("designs:   ", strings.Join(names, ", "))
		fmt.Println("benchmarks:", strings.Join(tlc.Benchmarks(), ", "))
		return
	}

	designs, err := parseDesigns(*design)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v (try -list)\n", err)
		os.Exit(2)
	}
	benches := parseBenches(*bench)

	opt := tlc.DefaultOptions()
	opt.Seed = *seed
	if *runN > 0 {
		opt.RunInstructions = *runN
	}
	opt.WarmInstructions = *warmN
	if err := accel.Apply(&opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	s := experiments.NewSuite(opt)
	start := time.Now()
	if err := s.RunAll(designs, benches, *par); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	switch {
	case *jsonF:
		out := make([]runJSON, 0, len(designs)*len(benches))
		for _, d := range designs {
			for _, b := range benches {
				if s.Sampled() {
					sr, err := s.SampledErr(d, b)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(2)
					}
					out = append(out, toJSONSampled(sr, opt.FidelityTier()))
					continue
				}
				out = append(out, toJSON(s.Run(d, b), opt.FidelityTier()))
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case len(designs) == 1 && len(benches) == 1:
		var sres *tlc.SampledResult
		if s.Sampled() {
			sr, err := s.SampledErr(designs[0], benches[0])
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			sres = &sr
		}
		printFull(s.Run(designs[0], benches[0]), sres, elapsed)
	default:
		printGrid(s, designs, benches, elapsed)
	}

	if err := accel.WriteMetrics(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// printFull is the single-run statistics block. sres, when non-nil, adds the
// sampled-mode confidence intervals and plan.
func printFull(res tlc.Result, sres *tlc.SampledResult, elapsed time.Duration) {
	fmt.Printf("design            %v\n", res.Design)
	fmt.Printf("benchmark         %s\n", res.Benchmark)
	fmt.Printf("instructions      %d\n", res.Instructions)
	if sres != nil {
		fmt.Printf("sampled           %d×%d intervals (%d detailed)\n",
			sres.Intervals, sres.DetailedInstructions/uint64(sres.Intervals), sres.DetailedInstructions)
		fmt.Printf("cycles            %d ± %.0f (95%% CI)\n", res.Cycles, sres.CyclesCI)
	} else {
		fmt.Printf("cycles            %d\n", res.Cycles)
	}
	fmt.Printf("IPC               %.3f\n", res.IPC)
	fmt.Printf("L2 loads          %d\n", res.L2Loads)
	fmt.Printf("L2 stores         %d\n", res.L2Stores)
	fmt.Printf("misses/1K instr   %.3f\n", res.MissesPer1K)
	if sres != nil {
		fmt.Printf("mean lookup       %.2f ± %.2f cycles\n", res.MeanLookup, sres.MeanLookupCI)
	} else {
		fmt.Printf("mean lookup       %.2f cycles\n", res.MeanLookup)
	}
	fmt.Printf("predictable       %.1f%%\n", res.PredictablePct)
	fmt.Printf("banks/request     %.2f\n", res.BanksPerRequest)
	fmt.Printf("network power     %.1f mW\n", res.NetworkPowerW*1000)
	if res.LinkUtilization > 0 {
		fmt.Printf("link utilization  %.2f%%\n", res.LinkUtilization*100)
	}
	if res.Design == tlc.DesignDNUCA {
		fmt.Printf("close hits        %.1f%%\n", res.CloseHitPct)
		fmt.Printf("promotes/inserts  %.2f\n", res.PromotesPerInsert)
	}
	fmt.Printf("(simulated in %v)\n", elapsed)
}

// printGrid is the compact multi-run table. Sampled suites carry an extra
// ±cycles column (the 95% CI half-width of the cycle estimate).
func printGrid(s *experiments.Suite, designs []tlc.Design, benches []string, elapsed time.Duration) {
	if s.Sampled() {
		fmt.Printf("%-12s %-8s %12s %10s %8s %10s %10s\n",
			"design", "bench", "cycles", "±cycles", "IPC", "lookup", "miss/1K")
	} else {
		fmt.Printf("%-12s %-8s %12s %8s %10s %10s\n",
			"design", "bench", "cycles", "IPC", "lookup", "miss/1K")
	}
	for _, d := range designs {
		for _, b := range benches {
			r := s.Run(d, b)
			if s.Sampled() {
				sr, err := s.SampledErr(d, b)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				fmt.Printf("%-12v %-8s %12d %10.0f %8.3f %10.2f %10.3f\n",
					d, b, r.Cycles, sr.CyclesCI, r.IPC, r.MeanLookup, r.MissesPer1K)
				continue
			}
			fmt.Printf("%-12v %-8s %12d %8.3f %10.2f %10.3f\n",
				d, b, r.Cycles, r.IPC, r.MeanLookup, r.MissesPer1K)
		}
	}
	// Timing goes to stderr: grid stdout must stay byte-identical for
	// every -par value.
	m := s.Metrics()
	fmt.Fprintf(os.Stderr, "(%d runs simulated in %v, %v of simulation)\n",
		m.Simulated, elapsed, m.SimWall.Round(time.Millisecond))
}

// parseDesigns resolves a comma-separated design list or "all".
func parseDesigns(arg string) ([]tlc.Design, error) {
	if strings.EqualFold(arg, "all") {
		return tlc.Designs(), nil
	}
	var out []tlc.Design
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		d, ok := parseDesign(name)
		if !ok {
			return nil, fmt.Errorf("unknown design %q", name)
		}
		out = append(out, d)
	}
	return out, nil
}

// parseBenches resolves a comma-separated benchmark list or "all". Unknown
// names pass through: the run reports them as errors with their names.
func parseBenches(arg string) []string {
	if strings.EqualFold(arg, "all") {
		return tlc.Benchmarks()
	}
	var out []string
	for _, b := range strings.Split(arg, ",") {
		out = append(out, strings.TrimSpace(b))
	}
	return out
}

func parseDesign(name string) (tlc.Design, bool) {
	for _, d := range tlc.Designs() {
		if strings.EqualFold(d.String(), name) {
			return d, true
		}
	}
	return 0, false
}
