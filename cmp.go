package tlc

// CMP execution: Options.Cores >= 2 runs N cores as peers over the shared
// L2 design through internal/machine — per-core NOC injection ports, a
// controller frontier arbitrating the interleaved miss streams onto the
// design's monotone-time calendars, and an MSI directory keeping the
// private L1s coherent. Single-core runs never enter this file: RunSpec
// routes here only when cores() > 1, which is what keeps N=1 bit-identical
// to the pre-CMP path (TestCMPSingleCoreEquivalence).

import (
	"fmt"

	"tlc/internal/config"
	"tlc/internal/cpu"
	"tlc/internal/l2"
	"tlc/internal/machine"
	"tlc/internal/sample"
	"tlc/internal/snapshot"
	"tlc/internal/stats"
	"tlc/internal/workload"
)

// prepareCMP builds an N-core machine for a run and brings it to
// measured-interval start, the CMP counterpart of prepare: N cores over
// the shared design, post-warm caches, a seeded coherence directory, and
// every per-core stream positioned (and reseeded) for the timed run.
// Checkpoints restore the whole machine — all cores, all streams, the L2,
// and the directory — or re-warm and store it. The per-core streams come
// back too: phase-mode profiling (runSpecCMPPhased) rewinds them after its
// functional pass.
func prepareCMP(d Design, spec workload.Spec, opt Options) (l2.Instrumented, *machine.Machine, []*workload.CMPStream, error) {
	sys := config.DefaultSystem()
	n := opt.cores()
	inst := build(d, opt)
	warmSeed, warm := warmPlan(spec, opt)
	shd := machine.NewShared(inst, n)
	cores := make([]*cpu.Core, n)
	streams := make([]cpu.Stream, n)
	gens := make([]*workload.CMPStream, n)
	for i := 0; i < n; i++ {
		gens[i] = workload.NewCMPStream(spec, warmSeed, i, opt.Sharing)
		streams[i] = gens[i]
		cores[i] = cpu.New(sys, shd.Port(i))
		cores[i].SetCancel(opt.Cancel)
	}
	shd.Attach(cores)
	m := machine.New(cores, streams, shd)

	// The design's registry becomes the run's: per-core counters under
	// "core.<i>.", machine-wide aggregates under the plain names the
	// single-core tooling reads, coherence and arbitration under "coh." /
	// "cmp.arb." / "noc.port.".
	reg := inst.Metrics()
	for i := range cores {
		prefix := fmt.Sprintf("core.%d.", i)
		cores[i].RegisterMetricsPrefixed(reg, prefix)
		gens[i].RegisterMetricsPrefixed(reg, prefix)
	}
	cpu.RegisterMetricsSum(reg, cores)
	workload.RegisterMetricsSum(reg, gens)
	shd.RegisterMetrics(reg)

	key := snapshot.Key{Config: configHash(d, spec, opt.cmpConfig(), opt.fidelity()), Bench: spec.Name, Seed: warmSeed, Warm: warm}
	restored := false
	if opt.Checkpoints != nil {
		if ckp, ok := opt.Checkpoints.Get(key); ok {
			restored = restoreCMPCheckpoint(ckp, cores, inst, gens, shd)
		}
	}
	if !restored {
		for i := range gens {
			gens[i].PreWarm(inst)
		}
		m.Warm(warm)
		if err := m.CancelErr(); err != nil {
			return nil, nil, nil, fmt.Errorf("tlc: %v %s warm-up cancelled: %w", d, spec.Name, err)
		}
		if opt.Checkpoints != nil {
			if snap, ok := inst.(l2.Snapshotter); ok {
				cs := make([]cpu.State, n)
				gs := make([]workload.CMPState, n)
				for i := range cores {
					cs[i] = cores[i].Snapshot()
					gs[i] = gens[i].State()
				}
				opt.Checkpoints.Put(key, snapshot.Checkpoint{
					// Core 0's view rides in the single-core fields so the
					// envelope stays coherent to older readers; CMP is the
					// provenance flag restore gates on.
					Core: cs[0],
					L2:   snap.SnapshotState(),
					Gen:  gs[0].Gen,
					CMP:  &snapshot.CMPCheckpoint{Cores: cs, Gens: gs, Dir: shd.DirectorySnapshot()},
				})
			}
		}
	}
	if opt.Seed != warmSeed {
		for i := range gens {
			gens[i].Reseed(opt.Seed)
		}
	}
	for i := range gens {
		gens[i].ResetCounters()
	}
	return inst, m, gens, nil
}

// restoreCMPCheckpoint applies a stored CMP checkpoint. A single-core
// checkpoint (nil CMP — the provenance flag) or one from a machine of a
// different width is a miss, falling back to re-warming, exactly as the
// lanes Has probe gates lane reuse.
func restoreCMPCheckpoint(ckp snapshot.Checkpoint, cores []*cpu.Core, c l2.Cache, gens []*workload.CMPStream, shd *machine.Shared) bool {
	if ckp.CMP == nil || len(ckp.CMP.Cores) != len(cores) || len(ckp.CMP.Gens) != len(gens) {
		return false
	}
	snap, ok := c.(l2.Snapshotter)
	if !ok {
		return false
	}
	for i := range cores {
		if err := cores[i].Restore(ckp.CMP.Cores[i]); err != nil {
			return false
		}
	}
	if err := snap.RestoreState(ckp.L2); err != nil {
		return false
	}
	for i := range gens {
		gens[i].SetState(ckp.CMP.Gens[i])
	}
	shd.RestoreDirectory(ckp.CMP.Dir)
	return true
}

// runSpecCMP is RunSpec's N-core arm: the machine times RunInstructions
// per core, and the Result reports machine-wide totals — Instructions
// summed over cores, Cycles the machine finish time (the latest core's
// clock), IPC their ratio.
func runSpecCMP(d Design, spec workload.Spec, opt Options) (Result, error) {
	inst, m, _, err := prepareCMP(d, spec, opt)
	if err != nil {
		return Result{}, err
	}
	cr := m.Run(opt.RunInstructions)
	if err := m.CancelErr(); err != nil {
		return Result{}, fmt.Errorf("tlc: %v %s run cancelled: %w", d, spec.Name, err)
	}
	res := assemble(d, spec.Name, inst.Metrics(), cr.Instructions, cr.Cycles)
	res.Instructions = cr.Instructions
	res.Cycles = uint64(cr.Cycles)
	res.IPC = cr.IPC()
	emitMetrics(d, spec.Name, inst, cr.Cycles, opt)
	return res, nil
}

// runSpecCMPSampled is RunSpecSampled's N-core arm: the machine implements
// sample.Target, so the interval math is shared — RunInstructions and
// SampleLength count instructions per core, per-interval CPI is machine
// cycles per per-core instruction, and the registry-wide counter deltas
// normalize per 1K executed instructions (all cores).
func runSpecCMPSampled(d Design, spec workload.Spec, opt Options) (SampledResult, error) {
	sopt := opt.SampleOptions()
	inst, m, _, err := prepareCMP(d, spec, opt)
	if err != nil {
		return SampledResult{}, err
	}
	reg := inst.Metrics()
	n := uint64(opt.cores())

	st := inst.L2Stats()
	var lookup, missRate stats.Sample
	var prevLookupSum, prevLookupCount, prevMisses uint64
	names := reg.CounterNames()
	counterSamples := make([]stats.Sample, len(names))
	prevVals := make([]uint64, len(names))
	curVals := make([]uint64, 0, len(names))
	prevVals = reg.AppendCounterValues(prevVals[:0], names)
	est := sample.RunTarget(m, opt.RunInstructions, sopt, func(iv sample.Interval) {
		dSum := st.Lookup.Sum() - prevLookupSum
		dCount := st.Lookup.Count() - prevLookupCount
		dMiss := st.Misses.Value() - prevMisses
		prevLookupSum, prevLookupCount, prevMisses = st.Lookup.Sum(), st.Lookup.Count(), st.Misses.Value()
		if dCount > 0 {
			lookup.Observe(float64(dSum) / float64(dCount))
		}
		missRate.Observe(1000 * float64(dMiss) / float64(iv.Result.Instructions))
		curVals = reg.AppendCounterValues(curVals[:0], names)
		for i, v := range curVals {
			counterSamples[i].Observe(1000 * float64(v-prevVals[i]) / float64(iv.Result.Instructions))
		}
		prevVals, curVals = curVals, prevVals
	})

	if err := m.CancelErr(); err != nil {
		return SampledResult{}, fmt.Errorf("tlc: %v %s run cancelled: %w", d, spec.Name, err)
	}
	estCycles := est.Cycles()
	totalInstr := opt.RunInstructions * n
	detailedTotal := est.Detailed * n
	res := assemble(d, spec.Name, reg, detailedTotal, est.FinalClock)
	res.Instructions = totalInstr
	res.Cycles = uint64(estCycles + 0.5)
	res.L2Loads = scaleCount(res.L2Loads, totalInstr, detailedTotal)
	res.L2Stores = scaleCount(res.L2Stores, totalInstr, detailedTotal)
	if estCycles > 0 {
		res.IPC = float64(totalInstr) / estCycles
	}
	mcis := make([]MetricCI, len(names))
	for i, name := range names {
		mcis[i] = MetricCI{Name: name, MeanPer1K: counterSamples[i].Mean(), CI95: counterSamples[i].CI95()}
	}
	emitMetrics(d, spec.Name, inst, est.FinalClock, opt)
	return SampledResult{
		Result:               res,
		CyclesCI:             est.CyclesCI(),
		MeanLookupCI:         lookup.CI95(),
		MissesPer1KCI:        missRate.CI95(),
		Intervals:            est.Intervals,
		DetailedInstructions: detailedTotal,
		Metrics:              mcis,
	}, nil
}
