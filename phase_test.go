package tlc

import (
	"math"
	"reflect"
	"testing"

	"tlc/internal/workload"
)

// phaseOptions is the bench-scale shape the phase tests share: the same
// warm/run lengths as TestSampledModeAccuracy, with the default phase
// shape (40 profiling windows clustered into at most 14 phases; each
// representative times its whole 5000-instruction window).
func phaseOptions() Options {
	return Options{
		WarmInstructions: 2_000_000,
		RunInstructions:  200_000,
		Seed:             1,
		PhaseWindows:     40,
		PhaseClusters:    14,
		SampleLength:     2_000,
	}
}

// TestPhaseSampledAccuracy is the acceptance gate for phase-aware
// sampling: on every benchmark the phased estimate must land within ±3%
// of the full detailed run's cycle count — the same tolerance uniform
// sampling meets with 50 intervals — while timing at most half as many
// detailed intervals (here ≤14, one per cluster, vs 50). The profile
// store is shared across benchmarks so the run also exercises the
// cold-miss path of the cache for each key.
func TestPhaseSampledAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-vs-phased comparison across all benchmarks is slow")
	}
	const tolerance = 0.03
	store := NewCheckpointStore(0, "")
	profiles := NewPhaseProfileStore(0, "")
	for _, b := range Benchmarks() {
		b := b
		t.Run(b, func(t *testing.T) {
			opt := phaseOptions()
			opt.Checkpoints = store
			full, err := Run(DesignTLC, b, Options{
				WarmInstructions: opt.WarmInstructions,
				RunInstructions:  opt.RunInstructions,
				Seed:             opt.Seed,
				Checkpoints:      store,
			})
			if err != nil {
				t.Fatal(err)
			}
			opt.PhaseProfiles = profiles
			phased, err := RunSampled(DesignTLC, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			rel := (float64(phased.Cycles) - float64(full.Cycles)) / float64(full.Cycles)
			if math.Abs(rel) > tolerance {
				t.Errorf("phased cycles %d vs full %d: %+.2f%% error exceeds ±%.0f%%",
					phased.Cycles, full.Cycles, 100*rel, 100*tolerance)
			}
			// The whole point: several times fewer detailed intervals than
			// uniform -sample 50 at the same tolerance.
			if phased.Intervals > 25 {
				t.Errorf("phased run timed %d intervals, want ≤25 (2x fewer than uniform 50)",
					phased.Intervals)
			}
			if phased.Intervals < 2 {
				t.Errorf("phased run timed %d intervals; a real workload has ≥2 phases", phased.Intervals)
			}
			if phased.CyclesCI < 0 || math.IsNaN(phased.CyclesCI) {
				t.Errorf("bad cycles confidence interval %v", phased.CyclesCI)
			}
			// Whole-window intervals: 200k run / 40 windows = 5000
			// instructions per timed representative.
			if phased.DetailedInstructions != uint64(phased.Intervals)*5_000 {
				t.Errorf("detailed instructions %d, want intervals*window = %d",
					phased.DetailedInstructions, uint64(phased.Intervals)*5_000)
			}
		})
	}
}

// TestPhaseProfileCacheEquivalence pins the determinism acceptance
// criterion: a run that hits the profile cache must select exactly the
// intervals a recompute selects and produce a bit-identical SampledResult.
// Three runs — cold store (profiling pass), warm store (memory hit), and
// no store at all (recompute every time) — must agree exactly, and only
// the cache-hit run may carry the sample.phase.profile_cached marker.
func TestPhaseProfileCacheEquivalence(t *testing.T) {
	opt := phaseOptions()
	opt.WarmInstructions = 500_000
	b := Benchmarks()[0]

	profiles := NewPhaseProfileStore(0, "")
	opt.PhaseProfiles = profiles
	cold, err := RunSampled(DesignTLC, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st := profiles.Stats(); st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("cold run store stats %+v, want 1 miss / 1 put", st)
	}
	warm, err := RunSampled(DesignTLC, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st := profiles.Stats(); st.Hits != 1 {
		t.Fatalf("warm run store stats %+v, want a memory hit", st)
	}

	opt.PhaseProfiles = nil
	bare, err := RunSampled(DesignTLC, b, opt)
	if err != nil {
		t.Fatal(err)
	}

	// The cached marker is the only legitimate difference between the
	// cold and warm runs' metric lists; strip it before comparing.
	strip := func(r SampledResult) SampledResult {
		mcis := r.Metrics[:0:0]
		for _, m := range r.Metrics {
			if m.Name != "sample.phase.profile_cached" {
				mcis = append(mcis, m)
			}
		}
		r.Metrics = mcis
		return r
	}
	if !reflect.DeepEqual(strip(cold), strip(warm)) {
		t.Error("cache-hit run diverged from the run that computed the profile")
	}
	if !reflect.DeepEqual(strip(cold), strip(bare)) {
		t.Error("storeless recompute diverged from the cold-store run")
	}
	hasMarker := func(r SampledResult) bool {
		for _, m := range r.Metrics {
			if m.Name == "sample.phase.profile_cached" {
				return true
			}
		}
		return false
	}
	if hasMarker(cold) || hasMarker(bare) {
		t.Error("profile_cached marker on a run that computed its profile")
	}
	if !hasMarker(warm) {
		t.Error("cache-hit run missing the sample.phase.profile_cached marker")
	}
}

// TestPhaseProfileDiskTier: a fresh store over the same directory reads
// the profile back from disk (DiskHits) and the run stays bit-identical,
// so fleets and repeat invocations share profiling passes through
// -ckptdir.
func TestPhaseProfileDiskTier(t *testing.T) {
	dir := t.TempDir()
	opt := phaseOptions()
	opt.WarmInstructions = 500_000
	b := Benchmarks()[1]

	opt.PhaseProfiles = NewPhaseProfileStore(0, dir)
	want, err := RunSampled(DesignTLC, b, opt)
	if err != nil {
		t.Fatal(err)
	}

	fresh := NewPhaseProfileStore(0, dir)
	opt.PhaseProfiles = fresh
	got, err := RunSampled(DesignTLC, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st := fresh.Stats(); st.DiskHits != 1 {
		t.Fatalf("fresh store stats %+v, want a disk hit", st)
	}
	// Disk-restored profile run differs from the computed run only by the
	// cached marker (checked exhaustively above); the selection-sensitive
	// numbers must agree exactly.
	if got.Cycles != want.Cycles || got.Intervals != want.Intervals ||
		got.DetailedInstructions != want.DetailedInstructions || got.CyclesCI != want.CyclesCI {
		t.Errorf("disk-restored run diverged: got cycles %d/%d intervals, want %d/%d",
			got.Cycles, got.Intervals, want.Cycles, want.Intervals)
	}
}

// TestPhaseCMPSampledAccuracy extends the accuracy gate to the CMP axis
// (satellite: -cores 2 with a sharing pattern): the phase-sampled 2-core
// estimate lands within tolerance of the full 2-core run, and the
// coherence counters carry confidence intervals in the sampled metric
// list.
func TestPhaseCMPSampledAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-vs-phased CMP comparison is slow")
	}
	const tolerance = 0.03
	opt := phaseOptions()
	opt.Cores = 2
	opt.Sharing = SharingSpec{Pattern: "producer-consumer"}
	store := NewCheckpointStore(0, "")
	opt.Checkpoints = store
	b := "gcc"

	full, err := Run(DesignTLC, b, Options{
		WarmInstructions: opt.WarmInstructions,
		RunInstructions:  opt.RunInstructions,
		Seed:             opt.Seed,
		Cores:            2,
		Sharing:          opt.Sharing,
		Checkpoints:      store,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt.PhaseProfiles = NewPhaseProfileStore(0, "")
	phased, err := RunSampled(DesignTLC, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	rel := (float64(phased.Cycles) - float64(full.Cycles)) / float64(full.Cycles)
	if math.Abs(rel) > tolerance {
		t.Errorf("phased CMP cycles %d vs full %d: %+.2f%% error exceeds ±%.0f%%",
			phased.Cycles, full.Cycles, 100*rel, 100*tolerance)
	}
	if phased.Intervals > 25 {
		t.Errorf("phased CMP run timed %d intervals, want ≤25", phased.Intervals)
	}
	coh := 0
	for _, m := range phased.Metrics {
		if len(m.Name) > 4 && m.Name[:4] == "coh." {
			coh++
			if math.IsNaN(m.CI95) || m.CI95 < 0 {
				t.Errorf("%s: bad CI %v", m.Name, m.CI95)
			}
		}
	}
	if coh == 0 {
		t.Error("no coh.* counters in the phased CMP metric list")
	}
}

// TestPhaseContentKey: the run-key axis must distinguish phase shapes —
// a cached result from one window/cluster shape must never serve another —
// and the profile key must NOT depend on the design, so one profile
// serves all six L2 designs of a benchmark.
func TestPhaseContentKey(t *testing.T) {
	base := phaseOptions()
	keys := map[string]string{
		"base":       base.ContentKey(),
		"windows 24": withPhase(base, 24, 16).ContentKey(),
		"clusters 8": withPhase(base, 48, 8).ContentKey(),
		"no phase":   Options{WarmInstructions: base.WarmInstructions, RunInstructions: base.RunInstructions, Seed: 1, SampleLength: 2000}.ContentKey(),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("options %q and %q share a content key", name, prev)
		}
		seen[k] = name
	}

	spec, _ := workload.SpecByName("gcc")
	if a, b := phaseProfileKey(spec, base), phaseProfileKey(spec, withPhase(base, 24, 16)); a == b {
		t.Error("profile key ignores the window count")
	}
	if a, b := phaseProfileKey(spec, base), phaseProfileKey(spec, withPhase(base, 48, 8)); a == b {
		t.Error("profile key ignores the cluster count")
	}
	spec2, _ := workload.SpecByName("mcf")
	if a, b := phaseProfileKey(spec, base), phaseProfileKey(spec2, base); a == b {
		t.Error("profile key ignores the workload")
	}
	// Design independence: the key function takes no design at all — the
	// type system enforces it — but pin the cross-design sharing behavior
	// end to end: two designs, one store, one profiling pass.
	opt := base
	opt.WarmInstructions = 500_000
	opt.PhaseProfiles = NewPhaseProfileStore(0, "")
	if _, err := RunSampled(DesignTLC, "gcc", opt); err != nil {
		t.Fatal(err)
	}
	if _, err := RunSampled(DesignSNUCA2, "gcc", opt); err != nil {
		t.Fatal(err)
	}
	st := opt.PhaseProfiles.Stats()
	if st.Puts != 1 || st.Hits != 1 {
		t.Errorf("two designs over one store: stats %+v, want 1 put + 1 hit (profile shared across designs)", st)
	}
}

func withPhase(o Options, w, k int) Options { o.PhaseWindows = w; o.PhaseClusters = k; return o }
