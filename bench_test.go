package tlc

// One benchmark per table and figure of the paper's evaluation section,
// plus the ablation benches DESIGN.md section 5 calls out. Each bench
// regenerates its experiment at a reduced scale (200 K timed instructions,
// 2 M warm) and reports the experiment's headline quantities as custom
// metrics, so `go test -bench=. -benchmem` doubles as a quick reproduction
// of the paper's shapes. cmd/tlctables runs the full-scale versions.

import (
	"math"
	"reflect"
	"testing"
	"time"

	"tlc/internal/config"
	"tlc/internal/cpu"
	"tlc/internal/l2"
	"tlc/internal/nuca"
	"tlc/internal/sim"
	"tlc/internal/stats"
	"tlc/internal/tlcache"
	"tlc/internal/tline"
	"tlc/internal/wire"
	"tlc/internal/workload"
)

// benchOptions is the reduced scale used by the benchmark harness.
func benchOptions() Options {
	return Options{WarmInstructions: 2_000_000, RunInstructions: 200_000, Seed: 1}
}

// benchRun runs one (design, benchmark) pair at bench scale.
func benchRun(b *testing.B, d Design, bench string) Result {
	b.Helper()
	res, err := Run(d, bench, benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkTable1TransmissionLines(b *testing.B) {
	var minAmp, minPulse float64
	for i := 0; i < b.N; i++ {
		minAmp, minPulse = 1, 1000
		for _, rep := range AnalyzeLines() {
			if !rep.OK {
				b.Fatalf("Table 1 geometry %+v fails acceptance", rep.Geometry)
			}
			minAmp = math.Min(minAmp, rep.AmplitudeFrac)
			minPulse = math.Min(minPulse, rep.PulseWidthPs)
		}
	}
	b.ReportMetric(minAmp, "min_amplitude_xVdd")
	b.ReportMetric(minPulse, "min_pulse_ps")
}

func BenchmarkTable2DesignParameters(b *testing.B) {
	want := map[Design][2]uint64{
		DesignTLC:        {10, 16},
		DesignTLCOpt1000: {12, 13},
		DesignTLCOpt500:  {12, 12},
		DesignTLCOpt350:  {12, 12},
		DesignSNUCA2:     {9, 32},
		DesignDNUCA:      {3, 47},
	}
	for i := 0; i < b.N; i++ {
		for d, r := range want {
			min, max := UncontendedRange(d)
			if min != r[0] || max != r[1] {
				b.Fatalf("%v uncontended range %d-%d, want %d-%d", d, min, max, r[0], r[1])
			}
		}
	}
	b.ReportMetric(2048, "tlc_total_lines")
}

func BenchmarkFigure3WireComparison(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rep := wire.Repeat(wire.Global45(), 20).DelayPs
		tl := 20e-3 / tline.Extract(tline.Table1()[2]).Velocity * 1e12
		speedup = rep / tl
	}
	b.ReportMetric(speedup, "tl_speedup_2cm")
	b.ReportMetric(wire.Repeat(wire.Global45(), 20).DelayCycles(), "rc_2cm_cycles")
}

func BenchmarkTable6BenchmarkCharacteristics(b *testing.B) {
	var tlcPred, dnucaPred stats.Series
	for i := 0; i < b.N; i++ {
		tlcPred, dnucaPred = stats.Series{}, stats.Series{}
		for _, bench := range Benchmarks() {
			tr := benchRun(b, DesignTLC, bench)
			dr := benchRun(b, DesignDNUCA, bench)
			tlcPred.Append(bench, tr.PredictablePct)
			dnucaPred.Append(bench, dr.PredictablePct)
		}
	}
	b.ReportMetric(tlcPred.Mean(), "tlc_predictable_pct")
	b.ReportMetric(dnucaPred.Mean(), "dnuca_predictable_pct")
}

func BenchmarkTable7SubstrateArea(b *testing.B) {
	var savings float64
	for i := 0; i < b.N; i++ {
		dn := Area(DesignDNUCA).TotalMM2()
		tl := Area(DesignTLC).TotalMM2()
		savings = 100 * (1 - tl/dn)
	}
	b.ReportMetric(savings, "area_savings_pct")
	b.ReportMetric(Area(DesignTLC).TotalMM2(), "tlc_total_mm2")
}

func BenchmarkTable8NetworkTransistors(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = float64(Transistors(DesignDNUCA).Count) / float64(Transistors(DesignTLC).Count)
	}
	b.ReportMetric(ratio, "transistor_ratio")
	b.ReportMetric(Transistors(DesignDNUCA).GateWidthLambda/1e6, "dnuca_gate_Mlambda")
	b.ReportMetric(Transistors(DesignTLC).GateWidthLambda/1e6, "tlc_gate_Mlambda")
}

func BenchmarkTable9DynamicPower(b *testing.B) {
	var avgSavings, dnucaBanks float64
	for i := 0; i < b.N; i++ {
		avgSavings, dnucaBanks = 0, 0
		for _, bench := range Benchmarks() {
			dr := benchRun(b, DesignDNUCA, bench)
			tr := benchRun(b, DesignTLC, bench)
			avgSavings += 1 - tr.NetworkPowerW/dr.NetworkPowerW
			dnucaBanks += dr.BanksPerRequest
		}
		avgSavings /= float64(len(Benchmarks()))
		dnucaBanks /= float64(len(Benchmarks()))
	}
	b.ReportMetric(avgSavings*100, "power_savings_pct")
	b.ReportMetric(dnucaBanks, "dnuca_banks_per_req")
}

func BenchmarkFigure5NormalizedExecTime(b *testing.B) {
	var dnuca, tlcs stats.Series
	for i := 0; i < b.N; i++ {
		dnuca, tlcs = stats.Series{}, stats.Series{}
		for _, bench := range Benchmarks() {
			base := float64(benchRun(b, DesignSNUCA2, bench).Cycles)
			dnuca.Append(bench, float64(benchRun(b, DesignDNUCA, bench).Cycles)/base)
			tlcs.Append(bench, float64(benchRun(b, DesignTLC, bench).Cycles)/base)
		}
	}
	b.ReportMetric(dnuca.GeoMean(), "dnuca_norm_exec_geomean")
	b.ReportMetric(tlcs.GeoMean(), "tlc_norm_exec_geomean")
}

func BenchmarkFigure6MeanLookupLatency(b *testing.B) {
	var tlcMin, tlcMax, dnMin, dnMax float64
	for i := 0; i < b.N; i++ {
		tlcMin, tlcMax, dnMin, dnMax = math.Inf(1), 0, math.Inf(1), 0
		for _, bench := range Benchmarks() {
			t := benchRun(b, DesignTLC, bench).MeanLookup
			d := benchRun(b, DesignDNUCA, bench).MeanLookup
			tlcMin, tlcMax = math.Min(tlcMin, t), math.Max(tlcMax, t)
			dnMin, dnMax = math.Min(dnMin, d), math.Max(dnMax, d)
		}
	}
	b.ReportMetric(tlcMax-tlcMin, "tlc_lookup_spread_cycles")
	b.ReportMetric(dnMax-dnMin, "dnuca_lookup_spread_cycles")
	b.ReportMetric(tlcMax, "tlc_lookup_max_cycles")
}

func BenchmarkFigure7LinkUtilization(b *testing.B) {
	var baseMax, opt350Max float64
	for i := 0; i < b.N; i++ {
		baseMax, opt350Max = 0, 0
		for _, bench := range Benchmarks() {
			baseMax = math.Max(baseMax, benchRun(b, DesignTLC, bench).LinkUtilization)
			opt350Max = math.Max(opt350Max, benchRun(b, DesignTLCOpt350, bench).LinkUtilization)
		}
	}
	b.ReportMetric(baseMax*100, "tlc_max_util_pct")
	b.ReportMetric(opt350Max*100, "opt350_max_util_pct")
}

func BenchmarkFigure8TLCFamilyExecTime(b *testing.B) {
	var worstDelta float64
	for i := 0; i < b.N; i++ {
		worstDelta = 0
		for _, bench := range Benchmarks() {
			base := float64(benchRun(b, DesignTLC, bench).Cycles)
			for _, d := range []Design{DesignTLCOpt1000, DesignTLCOpt500, DesignTLCOpt350} {
				norm := float64(benchRun(b, d, bench).Cycles) / base
				worstDelta = math.Max(worstDelta, math.Abs(norm-1))
			}
		}
	}
	b.ReportMetric(worstDelta*100, "family_worst_exec_delta_pct")
}

func BenchmarkFullScaleSampledSpeedup(b *testing.B) {
	// The perf acceptance gate: for a full-scale-shaped run (16 M warm +
	// 2 M timed), skipping warm-up via a checkpoint and cutting detailed
	// work via sampling must reduce wall-clock ≥5× while staying within
	// the sampled-mode accuracy envelope.
	opt := Options{WarmInstructions: 16_000_000, RunInstructions: 2_000_000, Seed: 1}
	fast := opt
	fast.Checkpoints = NewCheckpointStore(0, "")
	fast.SampleIntervals = 50
	fast.SampleLength = 2_000
	// Populate the checkpoint outside the timed region: the steady state
	// being modeled is a sweep or seed set that warms once.
	if _, err := RunSampled(DesignTLC, "gcc", fast); err != nil {
		b.Fatal(err)
	}
	var fullNS, fastNS time.Duration
	var speedup float64
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := Run(DesignTLC, "gcc", opt); err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		if _, err := RunSampled(DesignTLC, "gcc", fast); err != nil {
			b.Fatal(err)
		}
		fullNS += t1.Sub(t0)
		fastNS += time.Since(t1)
		speedup = float64(fullNS) / float64(fastNS)
	}
	b.ReportMetric(speedup, "wallclock_speedup")
	b.ReportMetric(float64(fullNS.Milliseconds())/float64(b.N), "full_ms_per_run")
	b.ReportMetric(float64(fastNS.Milliseconds())/float64(b.N), "sampled_ms_per_run")
}

func BenchmarkFullScaleFastSpeedup(b *testing.B) {
	// The fast-tier perf acceptance gate, same shape as
	// BenchmarkFullScaleSampledSpeedup: a full-scale run (16 M warm + 2 M
	// timed) against the fast tier restoring its checkpoint and running the
	// calibrated in-order model must be ≥5× faster in wall-clock, with the
	// accuracy side covered by the committed CALIBRATION.json bounds
	// (TestFastTierErrorWithinCalibratedBounds).
	opt := Options{WarmInstructions: 16_000_000, RunInstructions: 2_000_000, Seed: 1}
	fast := opt
	fast.Fidelity = FidelityFast
	fast.Checkpoints = NewCheckpointStore(0, "")
	// Populate the fast tier's checkpoint outside the timed region.
	if _, err := Run(DesignTLC, "gcc", fast); err != nil {
		b.Fatal(err)
	}
	var fullNS, fastNS time.Duration
	var speedup float64
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := Run(DesignTLC, "gcc", opt); err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		if _, err := Run(DesignTLC, "gcc", fast); err != nil {
			b.Fatal(err)
		}
		fullNS += t1.Sub(t0)
		fastNS += time.Since(t1)
		speedup = float64(fullNS) / float64(fastNS)
	}
	b.ReportMetric(speedup, "fast_speedup")
	b.ReportMetric(float64(fullNS.Milliseconds())/float64(b.N), "full_ms_per_run")
	b.ReportMetric(float64(fastNS.Milliseconds())/float64(b.N), "fast_ms_per_run")
}

func BenchmarkWarmThroughput(b *testing.B) {
	// The batched-delivery acceptance gate: the warm fast path (MemStream
	// run-length skipping + fused L1 scan + bulk L2 installs) against the
	// scalar reference loop, on identically prepared machines. Two workload
	// profiles bound the gain: bzip's references stay in the L1-resident
	// region (delivery-dominated, where fusion pays most), gcc spreads work
	// across the skewed hot set and the TLC warm kernel. The benchmark
	// doubles as a determinism smoke check: after the timed sections, the
	// two cores and caches must hold bit-identical state, so CI's short
	// -benchtime run fails loudly on any batched/scalar divergence.
	for _, name := range []string{"bzip", "gcc"} {
		b.Run(name, func(b *testing.B) {
			sys := config.DefaultSystem()
			spec, _ := workload.SpecByName(name)
			const warmN = 2_000_000
			mk := func() (*cpu.Core, *workload.Generator, *tlcache.Cache) {
				gen := workload.New(spec, 1)
				c := tlcache.New(config.TLC, sys.MemoryLatency)
				gen.PreWarm(c)
				core := cpu.New(sys, c)
				core.Warm(gen, warmN) // steady-state caches and buffers before timing
				return core, gen, c
			}
			scalarCore, scalarGen, scalarL2 := mk()
			fastCore, fastGen, fastL2 := mk()

			var scalarNS, fastNS time.Duration
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				scalarCore.Warm(scalarStream{scalarGen}, warmN)
				t1 := time.Now()
				fastCore.Warm(fastGen, warmN)
				scalarNS += t1.Sub(t0)
				fastNS += time.Since(t1)
			}
			b.ReportMetric(float64(scalarNS)/float64(fastNS), "warm_speedup")
			b.ReportMetric(float64(b.N)*warmN/1e6/fastNS.Seconds(), "batched_Minstr_per_s")
			b.ReportMetric(float64(b.N)*warmN/1e6/scalarNS.Seconds(), "scalar_Minstr_per_s")

			// Divergence check: both arms consumed the identical stream, so
			// state must match exactly.
			if scalarGen.State() != fastGen.State() {
				b.Fatal("batched and scalar warm diverged: generator state mismatch")
			}
			if !reflect.DeepEqual(scalarCore.Snapshot(), fastCore.Snapshot()) {
				b.Fatal("batched and scalar warm diverged: L1 state mismatch")
			}
			if !reflect.DeepEqual(scalarL2.SnapshotState(), fastL2.SnapshotState()) {
				b.Fatal("batched and scalar warm diverged: L2 state mismatch")
			}
		})
	}
}

// BenchmarkLaneSweep is the lane-parallel acceptance gate: warming every
// design of the grid off one shared stream (the SoA lane engine) against
// warming each design off its own stream (the batched fast path, the best
// per-point execution). The scalar arm pays stream generation and batching
// once per design; the lane arm pays it once for the whole group, and its
// 2-way kernel updates all lanes per reference. Like BenchmarkWarmThroughput
// it doubles as a determinism smoke check: after the timed sections, every
// lane's core, L2, and generator position must match its scalar twin bit for
// bit, so CI's short -benchtime run fails loudly on any divergence.
func BenchmarkLaneSweep(b *testing.B) {
	for _, name := range []string{"bzip", "gcc"} {
		b.Run(name, func(b *testing.B) {
			sys := config.DefaultSystem()
			spec, _ := workload.SpecByName(name)
			designs := Designs()
			const warmN = 2_000_000

			type arm struct {
				core *cpu.Core
				l2   l2.Snapshotter
			}
			mk := func(d Design, gen *workload.Generator) arm {
				inst := build(d, Options{})
				gen.PreWarm(inst)
				return arm{cpu.New(sys, inst), inst.(l2.Snapshotter)}
			}

			// Scalar arm: one private stream per design, batched delivery.
			scalarGens := make([]*workload.Generator, len(designs))
			scalarArms := make([]arm, len(designs))
			for i, d := range designs {
				scalarGens[i] = workload.New(spec, 1)
				scalarArms[i] = mk(d, scalarGens[i])
				scalarArms[i].core.Warm(scalarGens[i], warmN) // steady state before timing
			}
			// Lane arm: one shared stream drives every design.
			laneGen := workload.New(spec, 1)
			laneArms := make([]arm, len(designs))
			laneCores := make([]*cpu.Core, len(designs))
			for i, d := range designs {
				laneArms[i] = mk(d, laneGen)
				laneCores[i] = laneArms[i].core
			}
			lw := cpu.NewLaneWarmer(laneCores)
			if err := lw.Warm(laneGen, warmN, nil); err != nil {
				b.Fatal(err)
			}

			var scalarNS, laneNS time.Duration
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				for j := range scalarArms {
					scalarArms[j].core.Warm(scalarGens[j], warmN)
				}
				t1 := time.Now()
				if err := lw.Warm(laneGen, warmN, nil); err != nil {
					b.Fatal(err)
				}
				scalarNS += t1.Sub(t0)
				laneNS += time.Since(t1)
			}
			b.ReportMetric(float64(scalarNS)/float64(laneNS), "lane_speedup")
			b.ReportMetric(float64(b.N)*warmN*float64(len(designs))/1e6/laneNS.Seconds(), "lane_Minstr_per_s")
			b.ReportMetric(float64(b.N)*warmN*float64(len(designs))/1e6/scalarNS.Seconds(), "scalar_Minstr_per_s")

			// Divergence check: each lane consumed the identical stream its
			// scalar twin did, so all state must match exactly.
			for i, d := range designs {
				if scalarGens[i].State() != laneGen.State() {
					b.Fatalf("%v: lane and scalar warm diverged: generator state mismatch", d)
				}
				if !reflect.DeepEqual(scalarArms[i].core.Snapshot(), laneArms[i].core.Snapshot()) {
					b.Fatalf("%v: lane and scalar warm diverged: L1 state mismatch", d)
				}
				if !reflect.DeepEqual(scalarArms[i].l2.SnapshotState(), laneArms[i].l2.SnapshotState()) {
					b.Fatalf("%v: lane and scalar warm diverged: L2 state mismatch", d)
				}
			}
		})
	}
}

// --- Ablation benches (DESIGN.md section 5) ---

func BenchmarkAblationDNUCAPromotion(b *testing.B) {
	sys := config.DefaultSystem()
	var with, without float64
	for i := 0; i < b.N; i++ {
		run := func(disable bool) float64 {
			spec, _ := workload.SpecByName("gcc")
			gen := workload.New(spec, 1)
			d := nuca.NewDNUCA(sys.MemoryLatency)
			d.Abl.DisablePromotion = disable
			gen.PreWarm(d)
			core := cpu.New(sys, d)
			core.Warm(gen, 2_000_000)
			return float64(core.Run(gen, 200_000).Cycles)
		}
		with = run(false)
		without = run(true)
	}
	b.ReportMetric(without/with, "exec_ratio_without_promotion")
}

func BenchmarkAblationDNUCAPartialTags(b *testing.B) {
	sys := config.DefaultSystem()
	var with, without float64
	for i := 0; i < b.N; i++ {
		run := func(disable bool) float64 {
			spec, _ := workload.SpecByName("mcf")
			gen := workload.New(spec, 1)
			d := nuca.NewDNUCA(sys.MemoryLatency)
			d.Abl.DisablePartialTags = disable
			gen.PreWarm(d)
			core := cpu.New(sys, d)
			core.Warm(gen, 2_000_000)
			core.Run(gen, 200_000)
			return d.Lookup.Mean()
		}
		with = run(false)
		without = run(true)
	}
	b.ReportMetric(without-with, "lookup_cycles_added_without_ptags")
}

func BenchmarkAblationTLCLinkMargin(b *testing.B) {
	sys := config.DefaultSystem()
	var base, widened float64
	for i := 0; i < b.N; i++ {
		run := func(margin int) float64 {
			spec, _ := workload.SpecByName("mcf")
			gen := workload.New(spec, 1)
			c := tlcache.New(config.TLC, sys.MemoryLatency)
			c.AddLinkMargin(sim.Time(margin))
			gen.PreWarm(c)
			core := cpu.New(sys, c)
			core.Warm(gen, 2_000_000)
			return float64(core.Run(gen, 200_000).Cycles)
		}
		base = run(0)
		widened = run(2)
	}
	b.ReportMetric(widened/base, "exec_ratio_with_2cycle_margin")
}

func BenchmarkAblationReplacementOnEquake(b *testing.B) {
	// The equake story (Section 6.1): DNUCA's insert-far placement
	// shields its hot set from the stream; TLC's LRU does not.
	var tlcMiss, dnucaMiss float64
	for i := 0; i < b.N; i++ {
		tlcMiss = benchRun(b, DesignTLC, "equake").MissesPer1K
		dnucaMiss = benchRun(b, DesignDNUCA, "equake").MissesPer1K
	}
	b.ReportMetric(tlcMiss, "tlc_equake_miss_per_1k")
	b.ReportMetric(dnucaMiss, "dnuca_equake_miss_per_1k")
}

func BenchmarkAblationTLCoptMultiMatch(b *testing.B) {
	// Multi-matches need full sets with diverse tags: equake's large
	// resident hot set provides them (the SPECint footprints span too few
	// address-space chunks for 6-bit partial tags to alias).
	sys := config.DefaultSystem()
	var rate float64
	for i := 0; i < b.N; i++ {
		spec, _ := workload.SpecByName("equake")
		gen := workload.New(spec, 1)
		c := tlcache.New(config.TLCOpt500, sys.MemoryLatency)
		gen.PreWarm(c)
		core := cpu.New(sys, c)
		core.Warm(gen, 2_000_000)
		core.Run(gen, 200_000)
		rate = 100 * float64(c.MultiMatches) / float64(c.Loads.Value())
	}
	b.ReportMetric(rate, "multimatch_pct_of_lookups")
}

func BenchmarkAblationTLCNoiseECC(b *testing.B) {
	// The reliability extension (Section 4): sweep residual line noise
	// and measure what end-to-end ECC retries cost. At the operating
	// points the paper's conservative margins target, the cost is nil.
	sys := config.DefaultSystem()
	var retryRate, execRatio float64
	for i := 0; i < b.N; i++ {
		run := func(ber float64) (float64, float64) {
			spec, _ := workload.SpecByName("gcc")
			gen := workload.New(spec, 1)
			c := tlcache.New(config.TLC, sys.MemoryLatency)
			if ber > 0 {
				c.SetNoise(ber)
			}
			gen.PreWarm(c)
			core := cpu.New(sys, c)
			core.Warm(gen, 2_000_000)
			cr := core.Run(gen, 200_000)
			return float64(cr.Cycles), float64(c.ECCRetries) / float64(c.Loads.Value())
		}
		clean, _ := run(0)
		noisy, rr := run(5e-4)
		retryRate = rr
		execRatio = noisy / clean
	}
	b.ReportMetric(retryRate*100, "retry_pct_at_BER_5e-4")
	b.ReportMetric(execRatio, "exec_ratio_at_BER_5e-4")
}
