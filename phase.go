package tlc

// Phase-aware representative sampling: the root-package glue between the
// clustering machinery (internal/sample, internal/cpu.PhaseProfiler) and
// the run paths. A phased run profiles the timed stream in a cheap
// functional pass (rewinding the generator afterwards, so the measured
// stream is untouched), clusters the windows into program phases, and
// times one weighted representative interval per cluster — several times
// fewer detailed intervals than uniform sampling at the same accuracy.
// Profiles are design-independent and content-addressed, so a
// PhaseProfileStore pays the profiling pass once per benchmark across all
// six designs — and, with the fleet's peer-fill hook, once per fleet.

import (
	"fmt"

	"tlc/internal/config"
	"tlc/internal/cpu"
	"tlc/internal/l2"
	"tlc/internal/metrics"
	"tlc/internal/sample"
	"tlc/internal/stats"
	"tlc/internal/workload"
)

// phaseProfileKey content-addresses a workload's phase profile. It folds
// exactly what shapes the profiled stream and its clustering — the profile
// format, the system geometry (the shadow caches), the workload spec, the
// warm plan (the stream's position when timing starts; Reseed preserves
// position, so two runs with different warm lengths profile different
// windows), the timed seed and length, the window/cluster shape, and the
// CMP axis — and nothing design-specific, so one profile serves every L2
// design of a benchmark.
func phaseProfileKey(spec workload.Spec, opt Options) string {
	warmSeed, warm := warmPlan(spec, opt)
	k := newKeyHasher()
	k.u64(uint64(sample.ProfileFormat))
	k.system(config.DefaultSystem())
	k.spec(spec)
	k.u64(uint64(warmSeed))
	k.u64(warm)
	k.u64(uint64(opt.Seed))
	k.u64(opt.RunInstructions)
	k.i(opt.PhaseWindows)
	k.i(opt.PhaseClusters)
	k.cmp(opt.cmpConfig())
	return k.sum()
}

// phaseProfileFor resolves the run's phase profile: a cached entry that
// passes sample.Profile.Check (and carries the right key) wins; anything
// else — miss, stale format, foreign shape, corrupt peer fill — falls back
// to compute, whose result is stored for the next run. cached reports
// whether the store supplied the profile; because clustering is
// bit-deterministic in the key, a cached profile selects exactly the
// intervals a recompute would.
func phaseProfileFor(spec workload.Spec, opt Options, sopt sample.Options, compute func(key string) sample.Profile) (sample.Profile, bool) {
	key := phaseProfileKey(spec, opt)
	if opt.PhaseProfiles != nil {
		if prof, ok := opt.PhaseProfiles.Get(key); ok &&
			prof.Key == key && prof.Check(opt.RunInstructions, sopt) == nil {
			return prof, true
		}
	}
	prof := compute(key)
	if opt.PhaseProfiles != nil {
		opt.PhaseProfiles.Put(key, prof)
	}
	return prof, false
}

// computePhaseProfile runs the profiling pass over a prepared single-core
// generator: save the stream state, drive every window through shadow
// caches, rewind. The rewound generator is bit-identical to one that never
// profiled (the counters it dirtied reset, matching prepare's contract
// that metrics cover only the timed interval).
func computePhaseProfile(key string, gen *workload.Generator, opt Options) sample.Profile {
	st := gen.State()
	prof := cpu.NewPhaseProfiler(config.DefaultSystem())
	lens := sample.WindowLengths(opt.RunInstructions, opt.PhaseWindows)
	feats := make([][]float64, len(lens))
	instr := make([]uint64, len(lens))
	for w, n := range lens {
		f := prof.Window(gen, n)
		feats[w] = f.Vector()
		instr[w] = f.Instr
	}
	gen.SetState(st)
	gen.ResetCounters()
	return sample.BuildProfile(key, opt.RunInstructions, opt.SampleOptions(), feats, instr)
}

// computePhaseProfileCMP is the N-core profiling pass: every core's stream
// advances through each window (its own shadow hierarchy — private L1 and
// an uncontended view of the L2), features sum across cores, and window
// weights stay per-core instruction counts to match RunTarget's per-core
// accounting.
func computePhaseProfileCMP(key string, gens []*workload.CMPStream, opt Options) sample.Profile {
	states := make([]workload.CMPState, len(gens))
	for i, g := range gens {
		states[i] = g.State()
	}
	sys := config.DefaultSystem()
	profs := make([]*cpu.PhaseProfiler, len(gens))
	for i := range profs {
		profs[i] = cpu.NewPhaseProfiler(sys)
	}
	lens := sample.WindowLengths(opt.RunInstructions, opt.PhaseWindows)
	feats := make([][]float64, len(lens))
	instr := make([]uint64, len(lens))
	for w, n := range lens {
		var f cpu.PhaseFeatures
		for i, g := range gens {
			f.Add(profs[i].Window(g, n))
		}
		feats[w] = f.Vector()
		instr[w] = n
	}
	for i, g := range gens {
		g.SetState(states[i])
		g.ResetCounters()
	}
	return sample.BuildProfile(key, opt.RunInstructions, opt.SampleOptions(), feats, instr)
}

// registerPhaseMetrics publishes phase-sampling provenance. The counters
// exist only on phase runs — and sample.phase.profile_cached only on runs
// that reused a cached profile — mirroring sim.lanes.restored, so metric
// artifacts diff clean on shared names across modes.
func registerPhaseMetrics(reg *metrics.Registry, prof sample.Profile, cached bool) {
	windows, clusters := uint64(prof.Windows), uint64(len(prof.Reps))
	reg.CounterFunc("sample.phase.windows", func() uint64 { return windows })
	reg.CounterFunc("sample.phase.clusters", func() uint64 { return clusters })
	if cached {
		reg.CounterFunc("sample.phase.profile_cached", func() uint64 { return 1 })
	}
}

// phaseObserver builds the per-interval observer for a phased run: the
// same L2-stat and registry-counter deltas the uniform observer samples,
// but every observation weighted by its cluster's instruction count, so
// the estimates are unbiased even though small phases get the same one
// detailed interval big phases do.
type phaseObserver struct {
	lookup, missRate stats.Weighted
	counters         []stats.Weighted
	names            []string
	// Per-interval calibration covariates, in cluster order: the interval's
	// L2-miss and fetch-mispredict counts plus its instruction length, fed
	// to sample.Estimate.Calibrate after the run.
	spans []phaseSpan
}

type phaseSpan struct {
	cluster    int
	instr      uint64
	cpi        float64
	l2m, mispr float64
}

func newPhaseObserver(reg *metrics.Registry, inst l2.Instrumented, prof sample.Profile) (*phaseObserver, func(sample.Interval)) {
	st := inst.L2Stats()
	names := reg.CounterNames()
	o := &phaseObserver{counters: make([]stats.Weighted, len(names)), names: names}
	misprIdx := -1
	for i, n := range names {
		if n == "cpu.fetch.mispredicts" {
			misprIdx = i
		}
	}
	var prevLookupSum, prevLookupCount, prevMisses uint64
	prevVals := make([]uint64, len(names))
	curVals := make([]uint64, 0, len(names))
	prevVals = reg.AppendCounterValues(prevVals[:0], names)
	return o, func(iv sample.Interval) {
		w := float64(prof.Weights[iv.Index])
		dSum := st.Lookup.Sum() - prevLookupSum
		dCount := st.Lookup.Count() - prevLookupCount
		dMiss := st.Misses.Value() - prevMisses
		prevLookupSum, prevLookupCount, prevMisses = st.Lookup.Sum(), st.Lookup.Count(), st.Misses.Value()
		if dCount > 0 {
			o.lookup.Observe(float64(dSum)/float64(dCount), w)
		}
		o.missRate.Observe(1000*float64(dMiss)/float64(iv.Result.Instructions), w)
		curVals = reg.AppendCounterValues(curVals[:0], names)
		for i, v := range curVals {
			o.counters[i].Observe(1000*float64(v-prevVals[i])/float64(iv.Result.Instructions), w)
		}
		span := phaseSpan{
			cluster: iv.Index,
			instr:   iv.Result.Instructions,
			cpi:     float64(iv.Cycles) / float64(iv.Result.Instructions),
			l2m:     float64(dMiss),
		}
		if misprIdx >= 0 {
			span.mispr = float64(curVals[misprIdx] - prevVals[misprIdx])
		}
		o.spans = append(o.spans, span)
		prevVals, curVals = curVals, prevVals
	}
}

// counterTotal estimates a counter's full-run event count from its
// cluster-weighted per-1K rate (per-1K of total instructions across
// cores); a counter missing from the registry falls back to plain scaling
// of the detailed-window total.
func (o *phaseObserver) counterTotal(name string, total, raw, detailed uint64) uint64 {
	for i, n := range o.names {
		if n == name {
			return uint64(o.counters[i].Mean()*float64(total)/1000 + 0.5)
		}
	}
	return scaleCount(raw, total, detailed)
}

// metricCIs renders the weighted per-counter estimates.
func (o *phaseObserver) metricCIs() []MetricCI {
	mcis := make([]MetricCI, len(o.names))
	for i, n := range o.names {
		mcis[i] = MetricCI{Name: n, MeanPer1K: o.counters[i].Mean(), CI95: o.counters[i].CI95()}
	}
	return mcis
}

// calibratePhase sharpens the phased cycle estimate with the GREG
// estimator (sample.Estimate.Calibrate): measured representative CPIs
// regress on three per-span event rates whose exact full-run totals we
// hold — L2 misses (detailed counter plus warm-path probe counting),
// fetch mispredicts (the workload generator counts them in every delivery
// mode), and the profile's shadow-L1 miss rate (functional, so the
// profiled per-window value IS the run's value). Slope bounds are loose
// physical caps: an L2 miss cannot plausibly cost more than twice the
// DRAM latency, a mispredict more than a few pipeline refills, an L1 miss
// more than a far-bank L2 lookup.
func calibratePhase(est *sample.Estimate, prof sample.Profile, obs *phaseObserver, totL2, totMispr float64) {
	sys := config.DefaultSystem()
	var totL1 float64
	for w, f := range prof.Features {
		totL1 += f[cpu.FeatL1MissRate] * float64(prof.Instr[w])
	}
	cal := sample.Calibration{
		Totals: []float64{totL2, totMispr, totL1},
		Bounds: [][2]float64{
			{0, 2 * float64(sys.MemoryLatency)},
			{0, 3 * float64(sys.PipelineStages)},
			{0, 60},
		},
	}
	for _, s := range obs.spans {
		cal.Obs = append(cal.Obs, sample.SpanObs{
			Cluster: s.cluster,
			CPI:     s.cpi,
			X: []float64{
				s.l2m / float64(s.instr),
				s.mispr / float64(s.instr),
				prof.Features[prof.Reps[s.cluster]][cpu.FeatL1MissRate],
			},
		})
	}
	est.Calibrate(prof, cal)
}

// runSpecPhased is RunSpecSampled's phase-mode arm: profile (or fetch) the
// phase clustering, time one representative window per cluster, then
// calibrate the cycle estimate against exact covariate totals.
func runSpecPhased(d Design, spec workload.Spec, opt Options, sopt sample.Options) (SampledResult, error) {
	inst, core, gen, err := prepare(d, spec, opt)
	if err != nil {
		return SampledResult{}, err
	}
	prof, cached := phaseProfileFor(spec, opt, sopt, func(key string) sample.Profile {
		return computePhaseProfile(key, gen, opt)
	})
	reg := inst.Metrics()
	registerPhaseMetrics(reg, prof, cached)
	obs, observe := newPhaseObserver(reg, inst, prof)
	// Count functional L2 misses across the timed region's warm stretches;
	// added to the detailed counter they give the region's exact miss total.
	core.SetWarmMissCounting(true)
	warmBase := core.WarmL2Misses()
	est := sample.RunPhasedCore(core, gen, opt.RunInstructions, sopt, prof, observe)
	if err := core.CancelErr(); err != nil {
		return SampledResult{}, fmt.Errorf("tlc: %v %s run cancelled: %w", d, spec.Name, err)
	}
	totL2 := float64(reg.CounterValue("l2.misses")) + float64(core.WarmL2Misses()-warmBase)
	calibratePhase(&est, prof, obs, totL2, float64(reg.CounterValue("workload.mispredicts")))
	return assemblePhased(d, spec, opt, inst, est, obs, 1)
}

// runSpecCMPPhased is the N-core arm: the machine implements
// sample.Target, so profile computation (per-core streams) and weighted
// interval execution share all the single-core machinery. RunInstructions
// and SampleLength count instructions per core, exactly like uniform CMP
// sampling.
func runSpecCMPPhased(d Design, spec workload.Spec, opt Options, sopt sample.Options) (SampledResult, error) {
	inst, m, gens, err := prepareCMP(d, spec, opt)
	if err != nil {
		return SampledResult{}, err
	}
	prof, cached := phaseProfileFor(spec, opt, sopt, func(key string) sample.Profile {
		return computePhaseProfileCMP(key, gens, opt)
	})
	reg := inst.Metrics()
	registerPhaseMetrics(reg, prof, cached)
	obs, observe := newPhaseObserver(reg, inst, prof)
	est := sample.RunPhased(m, opt.RunInstructions, sopt, prof, observe)
	if err := m.CancelErr(); err != nil {
		return SampledResult{}, fmt.Errorf("tlc: %v %s run cancelled: %w", d, spec.Name, err)
	}
	return assemblePhased(d, spec, opt, inst, est, obs, uint64(opt.cores()))
}

// assemblePhased turns a phased estimate into a SampledResult. Registry
// aggregates over the detailed window would over-represent small clusters
// (each gets the same one interval regardless of weight), so the rate
// metrics — misses/1K, mean lookup, the load/store totals — come from the
// observer's cluster-weighted estimates instead; structural counters
// without a per-interval rate reading keep the assemble values.
func assemblePhased(d Design, spec workload.Spec, opt Options, inst l2.Instrumented, est sample.Estimate, obs *phaseObserver, cores uint64) (SampledResult, error) {
	estCycles := est.Cycles()
	totalInstr := opt.RunInstructions * cores
	detailedTotal := est.Detailed * cores
	res := assemble(d, spec.Name, inst.Metrics(), detailedTotal, est.FinalClock)
	res.Instructions = totalInstr
	res.Cycles = uint64(estCycles + 0.5)
	res.MissesPer1K = obs.missRate.Mean()
	if obs.lookup.N() > 0 {
		res.MeanLookup = obs.lookup.Mean()
	}
	res.L2Loads = obs.counterTotal("l2.loads", totalInstr, res.L2Loads, detailedTotal)
	res.L2Stores = obs.counterTotal("l2.stores", totalInstr, res.L2Stores, detailedTotal)
	if estCycles > 0 {
		res.IPC = float64(totalInstr) / estCycles
	}
	attachErrorBound(&res, opt)
	emitMetrics(d, spec.Name, inst, est.FinalClock, opt)
	return SampledResult{
		Result:               res,
		CyclesCI:             est.CyclesCI(),
		MeanLookupCI:         obs.lookup.CI95(),
		MissesPer1KCI:        obs.missRate.CI95(),
		Intervals:            est.Intervals,
		DetailedInstructions: detailedTotal,
		Metrics:              obs.metricCIs(),
	}, nil
}
