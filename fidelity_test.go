package tlc_test

import (
	"reflect"
	"runtime"
	"testing"

	"tlc"
	"tlc/internal/calibrate"
	"tlc/internal/experiments"
)

// TestFidelityInRunKey pins the tier into run identity: fast and full runs
// of the same configuration must never share a cached result, a
// checkpoint, or a fleet owner slot, while the empty tier aliases "full"
// exactly so every pre-fidelity key stays valid.
func TestFidelityInRunKey(t *testing.T) {
	opt := tlc.Options{WarmInstructions: 100_000, RunInstructions: 50_000, Seed: 1}
	full := opt
	full.Fidelity = tlc.FidelityFull
	fast := opt
	fast.Fidelity = tlc.FidelityFast

	if got, want := tlc.RunKey(tlc.DesignTLC, "gcc", opt), tlc.RunKey(tlc.DesignTLC, "gcc", full); got != want {
		t.Errorf("empty fidelity must alias %q: RunKey %q != %q", tlc.FidelityFull, got, want)
	}
	if opt.ContentKey() != full.ContentKey() {
		t.Errorf("empty fidelity must alias %q in ContentKey", tlc.FidelityFull)
	}
	if tlc.RunKey(tlc.DesignTLC, "gcc", opt) == tlc.RunKey(tlc.DesignTLC, "gcc", fast) {
		t.Error("fast and full tiers share a RunKey")
	}
	if opt.ContentKey() == fast.ContentKey() {
		t.Error("fast and full tiers share a ContentKey")
	}

	bad := opt
	bad.Fidelity = "turbo"
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted unknown fidelity tier")
	}
	cmp := fast
	cmp.Cores = 2
	if err := cmp.Validate(); err == nil {
		t.Error("Validate accepted fast fidelity with Cores=2")
	}
}

// TestFastTierAttachesErrorBound pins the error contract surface: a fast
// run of a calibrated benchmark carries the committed envelope (stamped
// with the artifact version), a full run carries none.
func TestFastTierAttachesErrorBound(t *testing.T) {
	opt := tlc.Options{WarmInstructions: 100_000, RunInstructions: 50_000, Seed: 1, Fidelity: tlc.FidelityFast}
	res, err := tlc.Run(tlc.DesignTLC, "gcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorBound == nil {
		t.Fatal("fast result has no ErrorBound")
	}
	if res.ErrorBound.Benchmark != "gcc" {
		t.Errorf("ErrorBound.Benchmark = %q, want gcc", res.ErrorBound.Benchmark)
	}
	art := calibrate.Default()
	if art == nil {
		t.Fatal("committed calibration artifact failed to parse")
	}
	if res.ErrorBound.CalibrationVersion != art.Version {
		t.Errorf("ErrorBound.CalibrationVersion = %d, want %d", res.ErrorBound.CalibrationVersion, art.Version)
	}
	if res.ErrorBound.CyclesLoPct >= res.ErrorBound.CyclesHiPct {
		t.Errorf("degenerate cycles interval [%f, %f]", res.ErrorBound.CyclesLoPct, res.ErrorBound.CyclesHiPct)
	}

	opt.Fidelity = tlc.FidelityFull
	res, err = tlc.Run(tlc.DesignTLC, "gcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorBound != nil {
		t.Error("full result carries an ErrorBound")
	}
}

// TestFastTierDeterministicAcrossPar pins fast-tier reproducibility under
// the suite's worker parallelism: the same grid at -par 1 and -par N must
// produce identical results, ErrorBound included.
func TestFastTierDeterministicAcrossPar(t *testing.T) {
	designs := []tlc.Design{tlc.DesignTLC, tlc.DesignSNUCA2}
	benches := []string{"gcc", "mcf", "equake"}
	run := func(par int) []tlc.Result {
		opt := tlc.DefaultOptions()
		opt.WarmInstructions = 500_000
		opt.RunInstructions = 100_000
		opt.Seed = 1
		opt.Fidelity = tlc.FidelityFast
		opt.Checkpoints = tlc.NewCheckpointStore(len(designs)*len(benches), "")
		s := experiments.NewSuite(opt)
		if err := s.RunAll(designs, benches, par); err != nil {
			t.Fatal(err)
		}
		var out []tlc.Result
		for _, d := range designs {
			for _, b := range benches {
				out = append(out, s.Run(d, b))
			}
		}
		return out
	}
	serial := run(1)
	parallel := run(runtime.NumCPU())
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("fast tier diverges across parallelism:\n-par 1: %+v\n-par N: %+v", serial, parallel)
	}
}

// TestFastTierCheckpointRoundTrip pins warm/restore interop on the fast
// tier: a run that restores a checkpoint must be bit-identical to the run
// that produced it, and the checkpoint must key on the tier (a full-tier
// store entry never serves a fast run).
func TestFastTierCheckpointRoundTrip(t *testing.T) {
	opt := tlc.Options{WarmInstructions: 500_000, RunInstructions: 100_000, Seed: 1, Fidelity: tlc.FidelityFast}
	opt.Checkpoints = tlc.NewCheckpointStore(0, "")
	cold, err := tlc.Run(tlc.DesignTLC, "gcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := tlc.Run(tlc.DesignTLC, "gcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, restored) {
		t.Fatalf("restored fast run differs from cold run:\ncold:     %+v\nrestored: %+v", cold, restored)
	}
}

// TestFastTierCMPNormalization pins the N=1 normalization on the fast
// tier: Cores=1 with any sharing spec is the single-core machine, same key
// and same result as the plain options.
func TestFastTierCMPNormalization(t *testing.T) {
	plain := tlc.Options{WarmInstructions: 200_000, RunInstructions: 50_000, Seed: 1, Fidelity: tlc.FidelityFast}
	cmp := plain
	cmp.Cores = 1
	cmp.Sharing = tlc.SharingSpec{Pattern: "read-mostly", SharedFrac: 0.5}
	if tlc.RunKey(tlc.DesignTLC, "gcc", plain) != tlc.RunKey(tlc.DesignTLC, "gcc", cmp) {
		t.Error("Cores=1 fast run keys differently from the plain single-core run")
	}
	a, err := tlc.Run(tlc.DesignTLC, "gcc", plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tlc.Run(tlc.DesignTLC, "gcc", cmp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Cores=1 fast run differs from plain run:\nplain: %+v\ncmp:   %+v", a, b)
	}
}

// TestFastTierComposesWithSampling pins the orthogonal axes: the fast tier
// under uniform sampling and under phase mode runs clean and still carries
// the calibrated envelope.
func TestFastTierComposesWithSampling(t *testing.T) {
	base := tlc.Options{WarmInstructions: 500_000, RunInstructions: 200_000, Seed: 1, Fidelity: tlc.FidelityFast}

	sampled := base
	sampled.SampleIntervals = 10
	sampled.SampleLength = 2_000
	sres, err := tlc.RunSampled(tlc.DesignTLC, "gcc", sampled)
	if err != nil {
		t.Fatal(err)
	}
	if sres.ErrorBound == nil {
		t.Error("sampled fast result has no ErrorBound")
	}

	phased := base
	phased.PhaseWindows = 10
	phased.PhaseClusters = 4
	phased.SampleLength = 2_000
	pres, err := tlc.RunSampled(tlc.DesignTLC, "gcc", phased)
	if err != nil {
		t.Fatal(err)
	}
	if pres.ErrorBound == nil {
		t.Error("phase-sampled fast result has no ErrorBound")
	}
}

// TestFastTierErrorWithinCalibratedBounds is the accuracy acceptance gate:
// every benchmark × design cell, re-measured at the committed artifact's
// recorded scale, must land inside the artifact's observed error interval.
// Both tiers are deterministic, so the slack over the recorded extremes is
// a hair of float formatting, not a tolerance for drift — drift beyond it
// means the artifact must be regenerated (go run ./cmd/tlccal -out).
func TestFastTierErrorWithinCalibratedBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("full 12x6x2-tier grid: skipped in -short")
	}
	art := calibrate.Default()
	if art == nil {
		t.Fatal("committed calibration artifact failed to parse")
	}
	designs := tlc.Designs()
	benches := tlc.Benchmarks()
	suite := func(fidelity string) *experiments.Suite {
		opt := tlc.DefaultOptions()
		opt.WarmInstructions = art.Scale.WarmInstructions
		opt.RunInstructions = art.Scale.RunInstructions
		opt.Seed = art.Scale.Seed
		opt.Fidelity = fidelity
		opt.Checkpoints = tlc.NewCheckpointStore(len(designs)*len(benches), "")
		s := experiments.NewSuite(opt)
		if err := s.RunAll(designs, benches, runtime.NumCPU()); err != nil {
			t.Fatal(err)
		}
		return s
	}
	fullS := suite(tlc.FidelityFull)
	fastS := suite(tlc.FidelityFast)
	const slack = 0.05 // percentage points
	cells := 0
	for _, d := range designs {
		for _, bench := range benches {
			be, ok := art.Bench(bench)
			if !ok {
				t.Fatalf("benchmark %s missing from committed artifact", bench)
			}
			fu := fullS.Run(d, bench)
			fa := fastS.Run(d, bench)
			errPct := 100 * (float64(fa.Cycles) - float64(fu.Cycles)) / float64(fu.Cycles)
			if errPct < be.Cycles.MinPct-slack || errPct > be.Cycles.MaxPct+slack {
				t.Errorf("%v/%s: fast cycle error %+.3f%% outside committed [%+.3f%%, %+.3f%%]",
					d, bench, errPct, be.Cycles.MinPct, be.Cycles.MaxPct)
			}
			ipcPct := 100 * (fa.IPC - fu.IPC) / fu.IPC
			if ipcPct < be.IPC.MinPct-slack || ipcPct > be.IPC.MaxPct+slack {
				t.Errorf("%v/%s: fast IPC error %+.3f%% outside committed [%+.3f%%, %+.3f%%]",
					d, bench, ipcPct, be.IPC.MinPct, be.IPC.MaxPct)
			}
			cells++
		}
	}
	if want := len(designs) * len(benches); cells != want {
		t.Fatalf("checked %d cells, want %d", cells, want)
	}
}
