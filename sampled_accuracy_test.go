package tlc

import (
	"math"
	"testing"
)

// TestSampledModeAccuracy is the acceptance gate for sampled execution:
// at bench scale (the warm/run shape bench_test.go uses) the sampled
// estimate must land within ±3% of the full detailed run's cycle count on
// all twelve benchmarks. 50 intervals × 2000 instructions stratifies the
// workloads' burst and working-set phases finely enough; with pipeline
// state resuming across intervals the residual error is pure sampling
// variance, and the runs are deterministic, so the margin is stable.
func TestSampledModeAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-vs-sampled comparison across all benchmarks is slow")
	}
	const tolerance = 0.03
	store := NewCheckpointStore(0, "") // share warm state between the pair
	for _, b := range Benchmarks() {
		b := b
		t.Run(b, func(t *testing.T) {
			opt := Options{
				WarmInstructions: 2_000_000,
				RunInstructions:  200_000,
				Seed:             1,
				Checkpoints:      store,
			}
			full, err := Run(DesignTLC, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.SampleIntervals = 50
			opt.SampleLength = 2_000
			sampled, err := RunSampled(DesignTLC, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			rel := (float64(sampled.Cycles) - float64(full.Cycles)) / float64(full.Cycles)
			if math.Abs(rel) > tolerance {
				t.Errorf("sampled cycles %d vs full %d: %+.2f%% error exceeds ±%.0f%%",
					sampled.Cycles, full.Cycles, 100*rel, 100*tolerance)
			}
			if sampled.CyclesCI < 0 || math.IsNaN(sampled.CyclesCI) {
				t.Errorf("bad cycles confidence interval %v", sampled.CyclesCI)
			}
			if sampled.DetailedInstructions != 100_000 {
				t.Errorf("sampled run timed %d instructions in detail, want 100000",
					sampled.DetailedInstructions)
			}
		})
	}
}
