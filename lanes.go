package tlc

import (
	"fmt"

	"tlc/internal/config"
	"tlc/internal/cpu"
	"tlc/internal/l2"
	"tlc/internal/snapshot"
	"tlc/internal/workload"
)

// warmPlan resolves the effective warm-up parameters of an options set: the
// seed the warm stream runs under and the warm length. It is the keying
// rule prepare and the lane-parallel warm pass must agree on — both derive
// the same snapshot.Key from it, which is what lets a lane pass pre-pay
// warm-ups that later scalar runs restore.
func warmPlan(spec workload.Spec, opt Options) (warmSeed int64, warm uint64) {
	warmSeed = opt.WarmSeed
	if warmSeed == 0 {
		warmSeed = opt.Seed
	}
	warm = opt.WarmInstructions
	if warm == 0 {
		warm = spec.AutoWarmInstructions()
	}
	return warmSeed, warm
}

// LaneStats reports what one lane-parallel warm pass covered.
type LaneStats struct {
	// Lanes is the number of distinct configurations the shared pass
	// warmed (grid points needing no warm-up — checkpoint already present,
	// or a duplicate configuration — contribute no lane).
	Lanes int
	// Batches counts the shared stream batches consumed once on behalf of
	// all lanes; each is a batch every lane would otherwise have generated
	// for itself.
	Batches uint64
}

// WarmLanes warms every distinct configuration of designs for one
// benchmark through a single shared workload stream and stores the
// per-configuration checkpoints in opt.Checkpoints. A subsequent run of
// any (design, benchmark) pair under options with the same warm plan
// restores its checkpoint and skips warm-up — and because functional
// warm-up has no feedback from the L2 into the reference stream, the
// restored state is bit-identical to what that run's own scalar warm-up
// would have produced (TestLaneScalarEquivalence pins this).
//
// The pass is an accelerator, never a requirement: with no checkpoint
// store, fewer than two lanes left to warm, or designs that cannot
// snapshot, it does nothing and runs warm scalar as before. The returned
// stats report only what the shared pass actually executed. A non-nil
// error means opt.Cancel aborted the pass; no checkpoint is stored.
func WarmLanes(designs []Design, benchmark string, opt Options) (LaneStats, error) {
	spec, ok := workload.SpecByName(benchmark)
	if !ok {
		return LaneStats{}, fmt.Errorf("tlc: unknown benchmark %q", benchmark)
	}
	if opt.Checkpoints == nil {
		return LaneStats{}, nil
	}
	if opt.cores() > 1 {
		// Lane warming is a single-core accelerator: CMP runs warm N
		// per-core streams (and seed a coherence directory) in prepareCMP;
		// a shared single-stream pass has nothing bit-identical to offer
		// them. No-op, like the other ineligible cases.
		return LaneStats{}, nil
	}
	warmSeed, warm := warmPlan(spec, opt)
	type lane struct {
		inst l2.Instrumented
		core *cpu.Core
		snap l2.Snapshotter
		key  snapshot.Key
	}
	seen := make(map[snapshot.Key]bool, len(designs))
	lanes := make([]lane, 0, len(designs))
	for _, d := range designs {
		key := snapshot.Key{Config: configHash(d, spec, singleCoreCMP(), opt.fidelity()), Bench: spec.Name, Seed: warmSeed, Warm: warm}
		if seen[key] {
			continue
		}
		seen[key] = true
		if opt.Checkpoints.Has(key) {
			continue
		}
		// The lane machines exist only to be checkpointed: probes observe
		// runs, not warm-up, so they are stripped before building.
		bopt := opt
		bopt.Probe = nil
		inst := build(d, bopt)
		snap, ok := inst.(l2.Snapshotter)
		if !ok {
			continue
		}
		lanes = append(lanes, lane{inst, cpu.New(config.DefaultSystem(), inst), snap, key})
	}
	if len(lanes) < 2 {
		// A lone lane shares nothing; let the point's own prepare warm it.
		return LaneStats{}, nil
	}
	// One generator drives every lane. PreWarm reads the spec-derived
	// layout without consuming generator state, so installing the footprint
	// into each lane's L2 leaves the shared stream exactly where each
	// lane's private generator would have started its warm-up.
	gen := workload.New(spec, warmSeed)
	cores := make([]*cpu.Core, len(lanes))
	for i := range lanes {
		gen.PreWarm(lanes[i].inst)
		cores[i] = lanes[i].core
	}
	lw := cpu.NewLaneWarmer(cores)
	if err := lw.Warm(gen, warm, opt.Cancel); err != nil {
		return LaneStats{}, fmt.Errorf("tlc: %s lane warm-up cancelled: %w", spec.Name, err)
	}
	genState := gen.State()
	for i := range lanes {
		opt.Checkpoints.Put(lanes[i].key, snapshot.Checkpoint{
			Core:  lanes[i].core.Snapshot(),
			L2:    lanes[i].snap.SnapshotState(),
			Gen:   genState,
			Lanes: true,
		})
	}
	return LaneStats{Lanes: len(lanes), Batches: lw.Batches()}, nil
}
