// Package tlc is the public API of this reproduction of "TLC: Transmission
// Line Caches" (Beckmann & Wood, MICRO 2003). It builds any of the paper's
// six level-2 cache designs, runs the twelve synthetic benchmarks against
// them on the Table 3 processor model, and reports every metric the
// paper's tables and figures use.
//
// Quick start:
//
//	res, err := tlc.Run(tlc.DesignTLC, "gcc", tlc.DefaultOptions())
//	fmt.Printf("IPC %.3f, mean L2 lookup %.1f cycles\n", res.IPC, res.MeanLookup)
//
// The per-design physical models are also exposed: tlc.Area and
// tlc.Transistors reproduce Tables 7-8, and tlc.AnalyzeLines the Table 1
// signal-integrity study.
package tlc

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math"

	"tlc/internal/area"
	"tlc/internal/calibrate"
	"tlc/internal/config"
	"tlc/internal/cpu"
	"tlc/internal/dram"
	"tlc/internal/l2"
	"tlc/internal/metrics"
	"tlc/internal/noc"
	"tlc/internal/nuca"
	"tlc/internal/power"
	"tlc/internal/probe"
	"tlc/internal/sample"
	"tlc/internal/sim"
	"tlc/internal/snapshot"
	"tlc/internal/stats"
	"tlc/internal/tlcache"
	"tlc/internal/tline"
	"tlc/internal/workload"
)

// Design identifies one of the six evaluated cache designs.
type Design = config.Design

// The six designs of Table 2.
const (
	DesignSNUCA2     = config.SNUCA2
	DesignDNUCA      = config.DNUCA
	DesignTLC        = config.TLC
	DesignTLCOpt1000 = config.TLCOpt1000
	DesignTLCOpt500  = config.TLCOpt500
	DesignTLCOpt350  = config.TLCOpt350
)

// Designs lists every design in Table 2 order.
func Designs() []Design { return config.AllDesigns() }

// TLCFamily lists the four transmission-line designs (Figures 7-8).
func TLCFamily() []Design { return config.TLCFamily() }

// Benchmarks lists the twelve benchmark names in Table 6 order.
func Benchmarks() []string { return workload.Names() }

// Options controls one simulation run.
type Options struct {
	// WarmInstructions run functionally before timing starts. Zero means
	// automatic: enough to converge the hot working set's placement
	// (workload.Spec.AutoWarmInstructions).
	WarmInstructions uint64
	// RunInstructions are timed.
	RunInstructions uint64
	// Seed makes the synthetic trace deterministic; the same seed gives
	// the identical instruction stream to every design.
	Seed int64
	// UseDRAM replaces the Table 3 flat 300-cycle memory with the banked
	// DRAM model (channels, banks, row buffers) — the substrate extension
	// for memory-system sensitivity studies.
	UseDRAM bool
	// BitErrorRate enables transmission-line noise injection with
	// end-to-end SEC-DED ECC at the controller (TLC designs only):
	// single-bit upsets are corrected in place, detected double-bit
	// errors cost a retry round trip. Zero disables injection.
	BitErrorRate float64

	// Fidelity selects the core timing tier: FidelityFull (the default;
	// "" normalizes to it) is the Table 3 out-of-order model, FidelityFast
	// an in-order fixed-IPC-with-MLP model roughly an order of magnitude
	// faster whose per-benchmark error against the full tier is measured
	// and committed (internal/calibrate); fast results carry the
	// calibrated ErrorBound. Fidelity is part of a run's identity — it
	// folds into configHash, ContentKey, and RunKey, so the tiers never
	// share a checkpoint, a cached result, or a fleet owner slot. The fast
	// tier composes with sampling and phase mode but not (yet) with CMP
	// runs: Validate rejects Fidelity=fast with Cores > 1.
	Fidelity string

	// Cores is the CMP core count. Zero or one runs the single-core
	// machine — bit-identical to the pre-CMP path, same cycles and same
	// metrics registry. 2..64 runs N cores as NOC peers over the shared
	// L2 design, with private L1s kept coherent by an MSI directory;
	// per-core counters appear under "core.<i>." alongside the aggregate
	// names, and coherence traffic under "coh.".
	Cores int
	// Sharing shapes how the cores' streams relate (CMP runs only): the
	// zero value stripes each core's private copy of the benchmark across
	// disjoint address ranges; see workload.SharingPatterns for the
	// cross-core patterns.
	Sharing SharingSpec

	// WarmSeed, when nonzero, seeds the warm-up stream separately from
	// the timed run: after warm-up the generator reseeds with Seed, so a
	// seed sweep measures every seed from one shared warmed machine state
	// (and one shared checkpoint). Zero warms with Seed itself.
	WarmSeed int64

	// Checkpoints, when non-nil, caches post-warm machine state keyed by
	// (design configuration, benchmark, warm seed, warm length). A run
	// whose key is present restores the state and skips warm-up entirely;
	// restored runs are bit-identical to runs that re-executed the
	// warm-up, because warm-up is purely functional. Share one store
	// across runs/goroutines to amortize warm-up; see NewCheckpointStore.
	Checkpoints *CheckpointStore

	// SampleIntervals, when positive, switches timing to SMARTS-style
	// sampled execution: SampleIntervals detailed intervals of
	// SampleLength instructions each, separated by functional
	// fast-forwarding, covering RunInstructions in total. Cycle counts
	// are estimated from per-interval CPI; RunSampled additionally
	// reports 95% confidence intervals.
	SampleIntervals int
	// SampleLength is the detailed instructions per interval (used by both
	// uniform sampling and phase mode).
	SampleLength uint64

	// PhaseWindows and PhaseClusters, both positive, switch timing to
	// phase-aware representative sampling: a cheap profiling pass slices
	// the timed stream into PhaseWindows fixed windows, k-means clusters
	// their feature vectors into PhaseClusters program phases
	// (deterministically, seeded from the profile's content key), and one
	// weighted representative interval of SampleLength instructions runs
	// per cluster — typically several times fewer detailed intervals than
	// uniform sampling at the same accuracy. Mutually exclusive with
	// SampleIntervals.
	PhaseWindows  int
	PhaseClusters int

	// PhaseProfiles, when non-nil, caches phase profiles keyed by workload
	// content (the profile is design-independent, so one entry serves all
	// six designs of a benchmark). Clustering is then paid once per
	// benchmark; see NewPhaseProfileStore. A miss recomputes and stores.
	PhaseProfiles *PhaseProfileStore

	// Cancel, when non-nil, is polled at batch boundaries (every few
	// thousand instructions) during warm-up and timed execution. When it
	// returns a non-nil error the run aborts and Run returns that error;
	// partially warmed state is discarded and never checkpointed. Pass a
	// context's Err method to bound a run by a deadline:
	//
	//	opt.Cancel = ctx.Err
	//
	// Cancellation is cooperative and read-only: a run that was not
	// cancelled is bit-identical to one executed with Cancel unset.
	Cancel func() error

	// OnMetrics, when set, receives the run's full metric-registry
	// snapshot after timing finishes — every counter, gauge, and histogram
	// each simulation layer registered, far beyond the fields Result
	// carries. It fires once per executed run (a Suite's cached duplicate
	// runs reuse the original's snapshot without re-firing).
	OnMetrics func(MetricsEvent)

	// Probe, when non-nil, installs per-event callbacks on the design
	// under test: one per L2 access and one per interconnect message. Unset
	// hooks cost nil-checks only; see internal/probe.
	Probe *probe.Hooks
}

// MetricsSnapshot is a point-in-time reading of a run's full metric
// registry, sorted by name.
type MetricsSnapshot = metrics.Snapshot

// ProbeHooks is the per-event callback set Options.Probe installs.
type ProbeHooks = probe.Hooks

// MetricsEvent delivers one finished run's metrics to Options.OnMetrics.
type MetricsEvent struct {
	Design    Design
	Benchmark string
	// Cycles is the simulated clock the gauges were evaluated at: the
	// run's final cycle (detailed-window span in sampled mode).
	Cycles uint64
	// Snapshot holds every registered metric. It shares no state with the
	// finished run and is safe to retain.
	Snapshot MetricsSnapshot
}

// SampleOptions projects the sampling fields.
func (o Options) SampleOptions() sample.Options {
	return sample.Options{
		Intervals:     o.SampleIntervals,
		Length:        o.SampleLength,
		PhaseWindows:  o.PhaseWindows,
		PhaseClusters: o.PhaseClusters,
	}
}

// phaseMode reports whether the options request phase-aware sampling
// (possibly half-configured; validation names the missing field).
func (o Options) phaseMode() bool { return o.PhaseWindows > 0 || o.PhaseClusters > 0 }

// sampledMode reports whether the options request any sampled execution —
// uniform intervals or phase-aware representatives.
func (o Options) sampledMode() bool { return o.SampleIntervals > 0 || o.phaseMode() }

// The two core timing tiers Options.Fidelity selects.
const (
	FidelityFull = "full"
	FidelityFast = "fast"
)

// fidelity normalizes Options.Fidelity: empty means full, so the pre-tier
// key space ("" everywhere) and explicit FidelityFull are one identity.
func (o Options) fidelity() string {
	if o.Fidelity == "" {
		return FidelityFull
	}
	return o.Fidelity
}

// FidelityTier reports the normalized fidelity tier ("full" or "fast") —
// the value keys, records, and per-tier metrics use.
func (o Options) FidelityTier() string { return o.fidelity() }

// validateFidelity rejects unknown tiers and unsupported combinations.
func (o Options) validateFidelity() error {
	switch o.fidelity() {
	case FidelityFull, FidelityFast:
	default:
		return fmt.Errorf("tlc: unknown fidelity %q (want %q or %q)", o.Fidelity, FidelityFull, FidelityFast)
	}
	if o.fidelity() == FidelityFast && o.cores() > 1 {
		return fmt.Errorf("tlc: fidelity %q does not support CMP runs (Cores=%d); use the full tier", FidelityFast, o.Cores)
	}
	return nil
}

// SharingSpec parameterizes cross-core sharing in CMP runs; see
// workload.SharingSpec.
type SharingSpec = workload.SharingSpec

// SharingPatterns lists the valid Options.Sharing pattern names.
func SharingPatterns() []string { return workload.SharingPatterns() }

// CMPConfig is the CMP axis of a run's configuration, folded into
// checkpoint and content keys: the core count, the coherence protocol,
// and the normalized sharing spec. Single-core runs normalize to
// {Cores: 1} — no protocol, no sharing — so the pre-CMP key space does
// not fork per ignored sharing knob.
type CMPConfig struct {
	Cores    int
	Protocol string
	Sharing  SharingSpec
}

// cores resolves Options.Cores: zero means one.
func (o Options) cores() int {
	if o.Cores <= 1 {
		return 1
	}
	return o.Cores
}

// cmpConfig normalizes the CMP axis for key hashing.
func (o Options) cmpConfig() CMPConfig {
	n := o.cores()
	if n == 1 {
		return CMPConfig{Cores: 1}
	}
	return CMPConfig{Cores: n, Protocol: "MSI", Sharing: o.Sharing.Normalize()}
}

// singleCoreCMP is the CMP axis of every pre-CMP run.
func singleCoreCMP() CMPConfig { return CMPConfig{Cores: 1} }

// Validate checks the options for configurations a run would reject: the
// CMP axis (a negative core count, more cores than the 64-wide directory
// bitmap holds, an unknown sharing pattern) and impossible sampling-field
// combinations. The run entry points validate internally; CLIs and the
// service call this early so a bad flag or request fails with the same
// one-line error before any simulation starts. Length-dependent sampling
// checks (the detailed plan fitting RunInstructions) stay at run time in
// sample.Options.Validate.
func (o Options) Validate() error {
	if err := o.validateCMP(); err != nil {
		return err
	}
	if err := o.validateFidelity(); err != nil {
		return err
	}
	if o.phaseMode() {
		if o.SampleIntervals > 0 {
			return fmt.Errorf("sample: Intervals=%d combined with PhaseWindows=%d/PhaseClusters=%d; uniform and phase sampling are mutually exclusive",
				o.SampleIntervals, o.PhaseWindows, o.PhaseClusters)
		}
		if o.PhaseWindows <= 0 {
			return fmt.Errorf("sample: PhaseWindows=%d; phase mode needs at least 1 window (set with PhaseClusters=%d)",
				o.PhaseWindows, o.PhaseClusters)
		}
		if o.PhaseClusters <= 0 {
			return fmt.Errorf("sample: PhaseClusters=%d; phase mode needs at least 1 cluster (set with PhaseWindows=%d)",
				o.PhaseClusters, o.PhaseWindows)
		}
		if o.PhaseClusters > o.PhaseWindows {
			return fmt.Errorf("sample: PhaseClusters=%d exceeds PhaseWindows=%d; cannot have more clusters than windows",
				o.PhaseClusters, o.PhaseWindows)
		}
	}
	return nil
}

// validateCMP rejects impossible CMP options before a run executes.
func (o Options) validateCMP() error {
	if o.Cores < 0 {
		return fmt.Errorf("tlc: %d cores; need at least 1", o.Cores)
	}
	if o.Cores > 64 {
		return fmt.Errorf("tlc: %d cores exceeds the 64-core directory limit", o.Cores)
	}
	if err := o.Sharing.Validate(); err != nil {
		return err
	}
	return nil
}

// CheckpointStore holds warm-state checkpoints: an in-process LRU with an
// optional on-disk tier. See internal/snapshot for the determinism
// contract.
type CheckpointStore = snapshot.Store

// NewCheckpointStore builds a checkpoint store holding up to capacity
// checkpoints in memory (a default when capacity <= 0). A non-empty dir
// adds a persistent tier shared across processes (the CLIs' -ckptdir).
func NewCheckpointStore(capacity int, dir string) *CheckpointStore {
	return snapshot.NewStore(capacity, dir)
}

// PhaseProfile is one workload's phase-clustering result: per-window
// feature vectors, the cluster assignment, and the representative window
// per cluster a phase-sampled run simulates in detail. Profiles are keyed
// by workload content (not design), so one profile serves every L2 design
// and every node in a fleet.
type PhaseProfile = sample.Profile

// PhaseProfileStore caches phase profiles: an in-process LRU with an
// optional on-disk tier (atomic writes, corrupt-degrades-to-recompute) and
// a fill hook the fleet layer uses for peer fetch.
type PhaseProfileStore = snapshot.ProfileStore

// NewPhaseProfileStore builds a profile store holding up to capacity
// profiles in memory (a default when capacity <= 0). A non-empty dir adds
// a persistent tier shared across processes (the CLIs' -ckptdir).
func NewPhaseProfileStore(capacity int, dir string) *PhaseProfileStore {
	return snapshot.NewProfileStore(capacity, dir)
}

// DefaultOptions returns the standard scaled run: automatic functional
// warm-up (4-24 M instructions, scaled to the benchmark's hot set) and 2 M
// timed instructions (the paper runs 0.5-1 B warm and 500 M timed on
// Simics; Section 4 of DESIGN.md discusses the scaling).
func DefaultOptions() Options {
	return Options{RunInstructions: 2_000_000, Seed: 1}
}

// Result is the outcome of one (design, benchmark) run.
type Result struct {
	Design    Design
	Benchmark string

	// Core-level results.
	Instructions uint64
	Cycles       uint64
	IPC          float64

	// L2 request statistics (Table 6).
	L2Loads         uint64
	L2Stores        uint64
	MissesPer1K     float64
	MeanLookup      float64
	PredictablePct  float64
	BanksPerRequest float64

	// Interconnect results.
	LinkUtilization float64 // TLC designs only (Figure 7)
	NetworkPowerW   float64 // Table 9

	// DNUCA-specific results (Table 6).
	CloseHitPct       float64
	PromotesPerInsert float64

	// Reliability results (TLC designs with a nonzero BitErrorRate).
	ECCCorrections uint64
	ECCRetries     uint64

	// ErrorBound is the calibrated fast-tier error envelope: nil on
	// full-fidelity results, and on fast results the committed
	// per-benchmark bias and interval on cycles/IPC relative to the full
	// tier (see internal/calibrate and EXPERIMENTS.md).
	ErrorBound *ErrorBound `json:",omitempty"`
}

// ErrorBound is the per-benchmark calibrated error envelope fast-tier
// results carry; see calibrate.Bound for field semantics.
type ErrorBound = calibrate.Bound

// attachErrorBound stamps the committed calibration envelope onto a
// fast-tier result. Full-tier results stay untouched (nil ErrorBound), and
// a benchmark absent from the committed artifact — a custom spec, say —
// yields a fast result with no bound rather than an error.
func attachErrorBound(res *Result, opt Options) {
	if opt.fidelity() != FidelityFast {
		return
	}
	if b, ok := calibrate.DefaultBound(res.Benchmark); ok {
		res.ErrorBound = &b
	}
}

// build instantiates a design wired into the instrumentation spine. Every
// design registers its layer counters at construction; build adds the
// cross-layer roll-ups that live above the design packages (network power
// imports both cache families, so its gauge registers here) and the
// optional DRAM substrate. All reporting below reads the returned
// registry — there is exactly one way to add a metric.
func build(d Design, opt Options) l2.Instrumented {
	sys := config.DefaultSystem()
	var memory *dram.Memory
	if opt.UseDRAM {
		memory = dram.New(dram.Default())
	}
	var inst l2.Instrumented
	switch d {
	case config.SNUCA2:
		s := nuca.NewSNUCA(sys.MemoryLatency)
		if memory != nil {
			s.SetMemory(memory)
		}
		s.Metrics().Gauge("power.network_w", func(now sim.Time) float64 {
			return power.MeshDynamicPowerW(s.Mesh(), now)
		})
		inst = s
	case config.DNUCA:
		dn := nuca.NewDNUCA(sys.MemoryLatency)
		if memory != nil {
			dn.SetMemory(memory)
		}
		dn.Metrics().Gauge("power.network_w", func(now sim.Time) float64 {
			return power.MeshDynamicPowerW(dn.Mesh(), now)
		})
		inst = dn
	default:
		tc := tlcache.New(d, sys.MemoryLatency)
		if memory != nil {
			tc.SetMemory(memory)
		}
		if opt.BitErrorRate > 0 {
			tc.SetNoise(opt.BitErrorRate)
		}
		tc.Metrics().Gauge("power.network_w", func(now sim.Time) float64 {
			return power.TLCDynamicPowerW(tc, now)
		})
		inst = tc
	}
	if memory != nil {
		memory.RegisterMetrics(inst.Metrics())
	}
	if opt.Probe != nil {
		inst.SetProbe(opt.Probe)
	}
	return inst
}

// Run simulates one benchmark on one design. With SampleIntervals set it
// runs in sampled mode (RunSampled exposes the confidence intervals the
// plain Result drops).
func Run(d Design, benchmark string, opt Options) (Result, error) {
	spec, ok := workload.SpecByName(benchmark)
	if !ok {
		return Result{}, fmt.Errorf("tlc: unknown benchmark %q", benchmark)
	}
	return RunSpec(d, spec, opt)
}

// checkpointFormat versions the warm-state layout. Bump it whenever the
// captured state's shape or semantics change, so stale on-disk checkpoints
// miss instead of restoring garbage.
const checkpointFormat = 3 // v3: fidelity tier in keys; v2: CMP axis in keys, optional CMP state in checkpoints

// keyHasher folds checkpoint-key fields into an FNV hash with explicit,
// typed encoding: every value is written as a fixed-width little-endian
// record (strings and slices length-prefixed), so the key depends only on
// the values deliberately encoded — unlike %+v formatting, whose output
// silently shifts when fields are added, reordered, or retyped, aliasing
// distinct configurations or (worse) keeping stale keys valid.
type keyHasher struct {
	h   hash.Hash64
	buf [8]byte
}

func newKeyHasher() *keyHasher { return &keyHasher{h: fnv.New64a()} }

func (k *keyHasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(k.buf[:], v)
	k.h.Write(k.buf[:])
}

func (k *keyHasher) i(v int)      { k.u64(uint64(int64(v))) }
func (k *keyHasher) t(v sim.Time) { k.u64(uint64(v)) }
func (k *keyHasher) f(v float64)  { k.u64(math.Float64bits(v)) }
func (k *keyHasher) b(v bool) {
	if v {
		k.u64(1)
	} else {
		k.u64(0)
	}
}

func (k *keyHasher) str(s string) {
	k.u64(uint64(len(s)))
	k.h.Write([]byte(s))
}

func (k *keyHasher) ints(v []int) {
	k.u64(uint64(len(v)))
	for _, x := range v {
		k.i(x)
	}
}

func (k *keyHasher) times(v []sim.Time) {
	k.u64(uint64(len(v)))
	for _, x := range v {
		k.t(x)
	}
}

func (k *keyHasher) sum() string { return fmt.Sprintf("%016x", k.h.Sum64()) }

// system folds every Table 3 machine parameter.
func (k *keyHasher) system(s config.System) {
	k.i(s.L1Bytes)
	k.i(s.L1Assoc)
	k.t(s.L1Latency)
	k.i(s.L2Bytes)
	k.i(s.L2Assoc)
	k.t(s.MemoryLatency)
	k.i(s.MaxOutstanding)
	k.i(s.ROBEntries)
	k.i(s.SchedulerEntries)
	k.i(s.FetchWidth)
	k.i(s.PipelineStages)
}

// spec folds every workload parameter.
func (k *keyHasher) spec(s workload.Spec) {
	k.str(s.Name)
	k.f(s.FootprintMB)
	k.f(s.L1MB)
	k.f(s.L1Frac)
	k.f(s.HotMB)
	k.f(s.HotFrac)
	k.i(s.HotSkew)
	k.f(s.StreamFrac)
	k.i(s.StreamRepeat)
	k.i(s.ColdSkew)
	k.f(s.ColdWindowMB)
	k.f(s.ColdTurnover)
	k.f(s.RecentFrac)
	k.f(s.StoreFrac)
	k.f(s.MemFrac)
	k.f(s.DepFrac)
	k.f(s.SerialFrac)
	k.i(s.MispredictEvery)
}

// mesh folds a NUCA floorplan.
func (k *keyHasher) mesh(c noc.Config) {
	k.i(c.Cols)
	k.i(c.Rows)
	k.ints(c.ColDist)
	k.t(c.SpineSegLat)
	k.times(c.VertReqLat)
	k.times(c.VertRespLat)
	k.t(c.IngressLat)
	k.i(c.FlitBytes)
	k.f(c.SpineSegMM)
	k.f(c.VertSegMM)
}

// nucaParams folds a NUCA design's parameters.
func (k *keyHasher) nucaParams(p config.NUCAParams) {
	k.i(int(p.Design))
	k.i(p.Banks)
	k.i(p.BankBytes)
	k.i(p.BankAssoc)
	k.t(p.BankAccess)
	k.mesh(p.Mesh)
	k.i(p.BankSets)
	k.t(p.PTagLatency)
}

// tlcParams folds a TLC-family design's parameters.
func (k *keyHasher) tlcParams(p config.TLCParams) {
	k.i(int(p.Design))
	k.i(p.Banks)
	k.i(p.BanksPerBlock)
	k.i(p.BankBytes)
	k.t(p.BankAccess)
	k.i(p.LinesPerPair)
	k.i(p.DownBits)
	k.i(p.UpBits)
	k.t(p.TLCycles)
	k.t(p.CtrlWireMax)
	k.b(p.PartialTagInBank)
}

// sharing folds a CMP sharing spec.
func (k *keyHasher) sharing(s SharingSpec) {
	k.str(s.Pattern)
	k.f(s.SharedMB)
	k.f(s.SharedFrac)
}

// cmp folds the CMP axis of a configuration.
func (k *keyHasher) cmp(c CMPConfig) {
	k.i(c.Cores)
	k.str(c.Protocol)
	k.sharing(c.Sharing)
}

// configHash keys checkpoints by everything that shapes post-warm machine
// state: the design and its parameters, the system (L1 geometry), the
// workload spec, the CMP axis (core count, protocol, sharing), and the
// fidelity tier. Warm-up itself is tier-independent, but keying on the
// tier keeps fast and full runs in disjoint checkpoint spaces — the
// isolation TestFidelityInRunKey pins. Over-keying (including parameters
// warm-up ignores) only costs spurious misses; under-keying would silently
// restore wrong state. Every parameter is folded field by field with typed
// encoding (keyHasher); TestConfigHashCoversEveryParameter asserts that
// perturbing any single field changes the key.
func configHash(d Design, spec workload.Spec, cmp CMPConfig, fidelity string) string {
	return configHashOf(d, config.DefaultSystem(), spec, nucaParamsFor(d), tlcParamsFor(d), cmp, fidelity)
}

// nucaParamsFor and tlcParamsFor return the design's parameter struct, or a
// zero value for the other family — keeping configHashOf total so the
// perturbation test can drive it directly.
func nucaParamsFor(d Design) config.NUCAParams {
	switch d {
	case config.SNUCA2, config.DNUCA:
		return config.NUCAFor(d)
	default:
		return config.NUCAParams{}
	}
}

func tlcParamsFor(d Design) config.TLCParams {
	switch d {
	case config.SNUCA2, config.DNUCA:
		return config.TLCParams{}
	default:
		return config.TLCFor(d)
	}
}

// configHashOf is the explicit-encoding core of configHash, parameterized
// for testing.
func configHashOf(d Design, sys config.System, spec workload.Spec, np config.NUCAParams, tp config.TLCParams, cmp CMPConfig, fidelity string) string {
	k := newKeyHasher()
	k.u64(checkpointFormat)
	k.i(int(d))
	k.system(sys)
	k.spec(spec)
	k.nucaParams(np)
	k.tlcParams(tp)
	k.cmp(cmp)
	k.str(fidelity)
	return k.sum()
}

// ContentKey hashes every Options field that shapes a run's simulated
// outcome — warm/timed lengths, seeds, the memory model, noise injection,
// and the sampling plan — with the same typed field-by-field encoding the
// checkpoint key uses. Fields that change how a run executes but not what
// it computes (Checkpoints, OnMetrics, Probe, Cancel) are deliberately
// excluded: a checkpointed, sampled-observer, or cancellable run with equal
// content fields is bit-identical to a plain one.
func (o Options) ContentKey() string {
	k := newKeyHasher()
	k.u64(o.WarmInstructions)
	k.u64(o.RunInstructions)
	k.u64(uint64(o.Seed))
	k.b(o.UseDRAM)
	k.f(o.BitErrorRate)
	k.u64(uint64(o.WarmSeed))
	k.i(o.SampleIntervals)
	k.u64(o.SampleLength)
	k.i(o.PhaseWindows)
	k.i(o.PhaseClusters)
	k.cmp(o.cmpConfig())
	k.str(o.fidelity())
	return k.sum()
}

// RunKey is the content address of one (design, benchmark, Options) run:
// equal keys provably name bit-identical results, so a result cache keyed
// by it (the tlcd service's) can serve hits without re-simulating. It folds
// the full design/system/workload configuration (configHash) with the
// benchmark name and the Options content fields. Unknown benchmark names
// hash fine (the spec folds as its zero value plus the name), erroring only
// when the run actually executes.
func RunKey(d Design, benchmark string, opt Options) string {
	spec, _ := workload.SpecByName(benchmark)
	k := newKeyHasher()
	k.str(configHash(d, spec, opt.cmpConfig(), opt.fidelity()))
	k.str(benchmark)
	k.str(opt.ContentKey())
	return k.sum()
}

// SummarizeSeeds folds per-seed observations into SeedStats in slice order.
// RunSeeds uses it, and remote seed sweeps (tlcsweep -remote) reuse it on
// individually fetched results so both paths compute — to the bit — the
// same statistics.
func SummarizeSeeds(vals []float64) SeedStats {
	st := SeedStats{Min: vals[0], Max: vals[0]}
	for _, v := range vals {
		st.Mean += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean /= float64(len(vals))
	return st
}

// prepare builds the machine for a run and brings it to measured-interval
// start: post-warm cache state with the generator positioned (and seeded)
// for the timed stream. Warm-up restores from opt.Checkpoints when
// possible, re-executing (and storing the result) otherwise. A non-nil
// error means opt.Cancel aborted the warm-up; the half-warm machine is
// discarded, never checkpointed.
func prepare(d Design, spec workload.Spec, opt Options) (l2.Instrumented, *cpu.Core, *workload.Generator, error) {
	sys := config.DefaultSystem()
	inst := build(d, opt)
	warmSeed, warm := warmPlan(spec, opt)
	gen := workload.New(spec, warmSeed)
	core := cpu.New(sys, inst)
	core.SetFast(opt.fidelity() == FidelityFast)
	core.SetCancel(opt.Cancel)
	// The design's registry becomes the run's: the core and the generator
	// publish alongside the cache layers.
	core.RegisterMetrics(inst.Metrics())
	gen.RegisterMetrics(inst.Metrics())

	key := snapshot.Key{Config: configHash(d, spec, singleCoreCMP(), opt.fidelity()), Bench: spec.Name, Seed: warmSeed, Warm: warm}
	restored := false
	if opt.Checkpoints != nil {
		if ckp, ok := opt.Checkpoints.Get(key); ok {
			restored = restoreCheckpoint(ckp, core, inst, gen)
			if restored && ckp.Lanes {
				// Provenance marker: this run skipped warm-up thanks to a
				// lane-parallel pass. Registered only on lane-restored runs,
				// so scalar and lane artifacts diff clean on shared names.
				inst.Metrics().CounterFunc("sim.lanes.restored", func() uint64 { return 1 })
			}
		}
	}
	if !restored {
		// Pre-warm installs the whole footprint so capacity state matches
		// a long-running process, then the trace warm-up establishes
		// recency and migration steady state.
		gen.PreWarm(inst)
		core.Warm(gen, warm)
		if err := core.CancelErr(); err != nil {
			// An aborted warm-up leaves the machine mid-stream: surface the
			// cancellation and, critically, keep the half-warm state out of
			// the checkpoint store.
			return nil, nil, nil, fmt.Errorf("tlc: %v %s warm-up cancelled: %w", d, spec.Name, err)
		}
		if opt.Checkpoints != nil {
			if snap, ok := inst.(l2.Snapshotter); ok {
				opt.Checkpoints.Put(key, snapshot.Checkpoint{
					Core: core.Snapshot(),
					L2:   snap.SnapshotState(),
					Gen:  gen.State(),
				})
			}
		}
	}
	if opt.Seed != warmSeed {
		// The timed interval measures its own stream: decorrelate it from
		// the (shared) warm-up stream.
		gen.Reseed(opt.Seed)
	}
	// The generator's counters, like every other metric, cover only the
	// timed interval — whether warm-up ran or a checkpoint skipped it.
	gen.ResetCounters()
	return inst, core, gen, nil
}

// restoreCheckpoint applies a stored checkpoint; a false return (type or
// geometry mismatch, e.g. a stale disk entry) falls back to re-warming.
func restoreCheckpoint(ckp snapshot.Checkpoint, core *cpu.Core, c l2.Cache, gen *workload.Generator) bool {
	if ckp.CMP != nil {
		// Provenance: a CMP machine's checkpoint never restores into a
		// single-core run (the mirror of restoreCMPCheckpoint's nil check).
		return false
	}
	snap, ok := c.(l2.Snapshotter)
	if !ok {
		return false
	}
	if err := core.Restore(ckp.Core); err != nil {
		return false
	}
	if err := snap.RestoreState(ckp.L2); err != nil {
		return false
	}
	gen.SetState(ckp.Gen)
	return true
}

// RunSpec simulates a custom workload spec on one design.
func RunSpec(d Design, spec workload.Spec, opt Options) (Result, error) {
	if err := opt.validateCMP(); err != nil {
		return Result{}, err
	}
	if err := opt.validateFidelity(); err != nil {
		return Result{}, err
	}
	if opt.sampledMode() {
		sres, err := RunSpecSampled(d, spec, opt)
		return sres.Result, err
	}
	if opt.cores() > 1 {
		return runSpecCMP(d, spec, opt)
	}
	inst, core, gen, err := prepare(d, spec, opt)
	if err != nil {
		return Result{}, err
	}
	cr := core.Run(gen, opt.RunInstructions)
	if err := core.CancelErr(); err != nil {
		return Result{}, fmt.Errorf("tlc: %v %s run cancelled: %w", d, spec.Name, err)
	}
	res := assemble(d, spec.Name, inst.Metrics(), cr.Instructions, cr.Cycles)
	res.Instructions = cr.Instructions
	res.Cycles = uint64(cr.Cycles)
	res.IPC = cr.IPC()
	attachErrorBound(&res, opt)
	emitMetrics(d, spec.Name, inst, cr.Cycles, opt)
	return res, nil
}

// assemble fills a Result entirely from registry reads — the single
// reporting path shared by every design. Counters absent from a design's
// registry (DNUCA's close hits on SNUCA, ECC on the mesh designs) read
// zero, exactly the zero value the flat Result previously left untouched.
func assemble(d Design, benchmark string, reg *metrics.Registry, instructions uint64, cycles sim.Time) Result {
	loads := reg.CounterValue("l2.loads")
	stores := reg.CounterValue("l2.stores")
	return Result{
		Design:          d,
		Benchmark:       benchmark,
		L2Loads:         loads,
		L2Stores:        stores,
		MissesPer1K:     stats.PerKilo(reg.CounterValue("l2.misses"), instructions),
		MeanLookup:      reg.HistogramMean("l2.lookup"),
		PredictablePct:  100 * stats.Ratio(reg.CounterValue("l2.predictable_lookups"), loads),
		BanksPerRequest: stats.Ratio(reg.CounterValue("l2.banks_touched"), loads+stores),
		NetworkPowerW:   reg.GaugeValue("power.network_w", cycles),
		LinkUtilization: reg.GaugeValue("tl.link_utilization", cycles),
		CloseHitPct:     reg.GaugeValue("l2.close_hit_pct", cycles),

		PromotesPerInsert: reg.GaugeValue("l2.promotes_per_insert", cycles),
		ECCCorrections:    reg.CounterValue("ecc.corrections"),
		ECCRetries:        reg.CounterValue("ecc.retries"),
	}
}

// emitMetrics fires the OnMetrics callback for a finished run.
func emitMetrics(d Design, benchmark string, inst l2.Instrumented, cycles sim.Time, opt Options) {
	if opt.OnMetrics == nil {
		return
	}
	opt.OnMetrics(MetricsEvent{
		Design:    d,
		Benchmark: benchmark,
		Cycles:    uint64(cycles),
		Snapshot:  inst.Metrics().Snapshot(cycles),
	})
}

// SampledResult is a Result estimated by sampled execution, plus the 95%
// confidence half-widths interval-to-interval variation puts on the
// estimated metrics. A CI of 0 with few intervals means "unknown", not
// "exact"; use 8+ intervals for honest intervals.
type SampledResult struct {
	Result
	// CyclesCI is the 95% confidence half-width on Cycles.
	CyclesCI float64
	// MeanLookupCI is the 95% confidence half-width on MeanLookup.
	MeanLookupCI float64
	// MissesPer1KCI is the 95% confidence half-width on MissesPer1K.
	MissesPer1KCI float64
	// Intervals and DetailedInstructions report the sampling shape used.
	Intervals            int
	DetailedInstructions uint64
	// Metrics extends the confidence intervals to every registered
	// counter: per-interval deltas of each registry counter, normalized to
	// events per 1K detailed instructions, aggregated across intervals.
	// Sorted by name.
	Metrics []MetricCI
}

// MetricCI is the sampled-mode estimate for one registry counter.
type MetricCI struct {
	// Name is the counter's registry name.
	Name string
	// MeanPer1K is the mean event rate per thousand detailed instructions
	// across intervals.
	MeanPer1K float64
	// CI95 is the 95% confidence half-width on MeanPer1K.
	CI95 float64
}

// RunSampled simulates one benchmark on one design in sampled mode.
func RunSampled(d Design, benchmark string, opt Options) (SampledResult, error) {
	spec, ok := workload.SpecByName(benchmark)
	if !ok {
		return SampledResult{}, fmt.Errorf("tlc: unknown benchmark %q", benchmark)
	}
	return RunSpecSampled(d, spec, opt)
}

// RunSpecSampled simulates a custom workload spec on one design in sampled
// mode: SampleIntervals detailed intervals of SampleLength instructions,
// interleaved with functional fast-forwarding, standing in for a full
// RunInstructions-long detailed run.
func RunSpecSampled(d Design, spec workload.Spec, opt Options) (SampledResult, error) {
	sopt := opt.SampleOptions()
	if err := sopt.Validate(opt.RunInstructions); err != nil {
		return SampledResult{}, err
	}
	if err := opt.validateCMP(); err != nil {
		return SampledResult{}, err
	}
	if err := opt.validateFidelity(); err != nil {
		return SampledResult{}, err
	}
	if sopt.Phase() {
		if opt.cores() > 1 {
			return runSpecCMPPhased(d, spec, opt, sopt)
		}
		return runSpecPhased(d, spec, opt, sopt)
	}
	if opt.cores() > 1 {
		return runSpecCMPSampled(d, spec, opt)
	}
	inst, core, gen, err := prepare(d, spec, opt)
	if err != nil {
		return SampledResult{}, err
	}
	reg := inst.Metrics()

	// Per-interval L2 stat deltas feed the lookup-latency and miss-rate
	// confidence intervals.
	st := inst.L2Stats()
	var lookup, missRate stats.Sample
	var prevLookupSum, prevLookupCount, prevMisses uint64
	// Generic per-counter deltas extend the CIs to every registered
	// counter. The name list and the value buffers are fixed up front so
	// the per-interval observer allocates nothing.
	names := reg.CounterNames()
	counterSamples := make([]stats.Sample, len(names))
	prevVals := make([]uint64, len(names))
	curVals := make([]uint64, 0, len(names))
	prevVals = reg.AppendCounterValues(prevVals[:0], names)
	est := sample.Run(core, gen, opt.RunInstructions, sopt, func(iv sample.Interval) {
		dSum := st.Lookup.Sum() - prevLookupSum
		dCount := st.Lookup.Count() - prevLookupCount
		dMiss := st.Misses.Value() - prevMisses
		prevLookupSum, prevLookupCount, prevMisses = st.Lookup.Sum(), st.Lookup.Count(), st.Misses.Value()
		if dCount > 0 {
			lookup.Observe(float64(dSum) / float64(dCount))
		}
		missRate.Observe(1000 * float64(dMiss) / float64(iv.Result.Instructions))
		curVals = reg.AppendCounterValues(curVals[:0], names)
		for i, v := range curVals {
			counterSamples[i].Observe(1000 * float64(v-prevVals[i]) / float64(iv.Result.Instructions))
		}
		prevVals, curVals = curVals, prevVals
	})

	if err := core.CancelErr(); err != nil {
		return SampledResult{}, fmt.Errorf("tlc: %v %s run cancelled: %w", d, spec.Name, err)
	}
	estCycles := est.Cycles()
	// The L2 counters cover only the detailed instructions; rates are
	// computed over that denominator, and the absolute load/store counts
	// are scaled to the full run like the cycle estimate. Power and
	// utilization integrate over the detailed window: the clock only
	// advances during detailed intervals, so FinalClock is that window's
	// span.
	res := assemble(d, spec.Name, reg, est.Detailed, est.FinalClock)
	res.Instructions = opt.RunInstructions
	res.Cycles = uint64(estCycles + 0.5)
	res.L2Loads = scaleCount(res.L2Loads, opt.RunInstructions, est.Detailed)
	res.L2Stores = scaleCount(res.L2Stores, opt.RunInstructions, est.Detailed)
	if estCycles > 0 {
		res.IPC = float64(opt.RunInstructions) / estCycles
	}
	mcis := make([]MetricCI, len(names))
	for i, n := range names {
		mcis[i] = MetricCI{Name: n, MeanPer1K: counterSamples[i].Mean(), CI95: counterSamples[i].CI95()}
	}
	attachErrorBound(&res, opt)
	emitMetrics(d, spec.Name, inst, est.FinalClock, opt)
	return SampledResult{
		Result:               res,
		CyclesCI:             est.CyclesCI(),
		MeanLookupCI:         lookup.CI95(),
		MissesPer1KCI:        missRate.CI95(),
		Intervals:            est.Intervals,
		DetailedInstructions: est.Detailed,
		Metrics:              mcis,
	}, nil
}

// scaleCount extrapolates a detailed-interval event count to the full run.
func scaleCount(n, total, detailed uint64) uint64 {
	if detailed == 0 {
		return n
	}
	return uint64(float64(n)*float64(total)/float64(detailed) + 0.5)
}

// SeedStats summarizes a metric across seeds: the reproduction's
// seed-robustness check.
type SeedStats struct {
	Mean, Min, Max float64
}

// Spread reports (max-min)/mean, a unitless robustness measure.
func (s SeedStats) Spread() float64 {
	if s.Mean == 0 {
		return 0
	}
	return (s.Max - s.Min) / s.Mean
}

// RunSeeds runs one (design, benchmark) pair across several seeds and
// summarizes cycles, mean lookup latency, and misses/1K. Conclusions that
// survive the seed sweep are workload-structure effects, not artifacts of
// one random stream.
//
// The sweep warms up once: every seed measures from the machine state the
// first seed's warm-up produced (WarmSeed pins the warm stream; the timed
// stream reseeds per seed). Warm-up is paid once via the checkpoint store —
// opt.Checkpoints if provided, else a sweep-local one — so seeds after the
// first skip it entirely.
func RunSeeds(d Design, benchmark string, opt Options, seeds []int64) (cycles, lookup, misses SeedStats, err error) {
	if len(seeds) == 0 {
		return cycles, lookup, misses, fmt.Errorf("tlc: no seeds")
	}
	if opt.WarmSeed == 0 {
		opt.WarmSeed = seeds[0]
	}
	if opt.Checkpoints == nil {
		opt.Checkpoints = NewCheckpointStore(0, "")
	}
	var cs, ls, ms []float64
	for _, seed := range seeds {
		o := opt
		o.Seed = seed
		res, rerr := Run(d, benchmark, o)
		if rerr != nil {
			return cycles, lookup, misses, rerr
		}
		cs = append(cs, float64(res.Cycles))
		ls = append(ls, res.MeanLookup)
		ms = append(ms, res.MissesPer1K)
	}
	return SummarizeSeeds(cs), SummarizeSeeds(ls), SummarizeSeeds(ms), nil
}

// AreaBreakdown is one Table 7 row.
type AreaBreakdown = area.Breakdown

// Area reports the substrate-area breakdown of a design (Table 7).
func Area(d Design) AreaBreakdown { return area.DesignArea(d) }

// NetworkTransistors is one Table 8 row.
type NetworkTransistors = area.NetworkTransistors

// Transistors reports the communication-network transistor demand of a
// design (Table 8).
func Transistors(d Design) NetworkTransistors { return area.DesignTransistors(d) }

// LineReport is the physical analysis of one transmission-line geometry.
type LineReport = tline.Signal

// AnalyzeLines runs the Table 1 geometries through the physical model:
// extraction, flight time, and signal-integrity acceptance.
func AnalyzeLines() []LineReport {
	var out []LineReport
	for _, g := range tline.Table1() {
		out = append(out, tline.Analyze(g))
	}
	return out
}

// UncontendedRange reports a design's Table 2 uncontended-latency range.
func UncontendedRange(d Design) (min, max uint64) {
	sys := config.DefaultSystem()
	switch d {
	case config.SNUCA2:
		a, b := nuca.NewSNUCA(sys.MemoryLatency).NominalRange()
		return uint64(a), uint64(b)
	case config.DNUCA:
		a, b := nuca.NewDNUCA(sys.MemoryLatency).NominalRange()
		return uint64(a), uint64(b)
	default:
		a, b := tlcache.New(d, sys.MemoryLatency).NominalRange()
		return uint64(a), uint64(b)
	}
}

// TotalLines reports a TLC design's transmission-line count (Table 2);
// zero for the NUCA designs.
func TotalLines(d Design) int {
	switch d {
	case config.SNUCA2, config.DNUCA:
		return 0
	default:
		return config.TLCFor(d).TotalLines()
	}
}

// MeshSegments exposes the NUCA mesh segment count for reporting; zero for
// TLC designs.
func MeshSegments(d Design) int {
	switch d {
	case config.SNUCA2, config.DNUCA:
		return noc.New(config.NUCAFor(d).Mesh).SegmentCount()
	default:
		return 0
	}
}
