// Package tlc is the public API of this reproduction of "TLC: Transmission
// Line Caches" (Beckmann & Wood, MICRO 2003). It builds any of the paper's
// six level-2 cache designs, runs the twelve synthetic benchmarks against
// them on the Table 3 processor model, and reports every metric the
// paper's tables and figures use.
//
// Quick start:
//
//	res, err := tlc.Run(tlc.DesignTLC, "gcc", tlc.DefaultOptions())
//	fmt.Printf("IPC %.3f, mean L2 lookup %.1f cycles\n", res.IPC, res.MeanLookup)
//
// The per-design physical models are also exposed: tlc.Area and
// tlc.Transistors reproduce Tables 7-8, and tlc.AnalyzeLines the Table 1
// signal-integrity study.
package tlc

import (
	"fmt"

	"tlc/internal/area"
	"tlc/internal/config"
	"tlc/internal/cpu"
	"tlc/internal/dram"
	"tlc/internal/l2"
	"tlc/internal/noc"
	"tlc/internal/nuca"
	"tlc/internal/power"
	"tlc/internal/sim"
	"tlc/internal/tlcache"
	"tlc/internal/tline"
	"tlc/internal/workload"
)

// Design identifies one of the six evaluated cache designs.
type Design = config.Design

// The six designs of Table 2.
const (
	DesignSNUCA2     = config.SNUCA2
	DesignDNUCA      = config.DNUCA
	DesignTLC        = config.TLC
	DesignTLCOpt1000 = config.TLCOpt1000
	DesignTLCOpt500  = config.TLCOpt500
	DesignTLCOpt350  = config.TLCOpt350
)

// Designs lists every design in Table 2 order.
func Designs() []Design { return config.AllDesigns() }

// TLCFamily lists the four transmission-line designs (Figures 7-8).
func TLCFamily() []Design { return config.TLCFamily() }

// Benchmarks lists the twelve benchmark names in Table 6 order.
func Benchmarks() []string { return workload.Names() }

// Options controls one simulation run.
type Options struct {
	// WarmInstructions run functionally before timing starts. Zero means
	// automatic: enough to converge the hot working set's placement
	// (workload.Spec.AutoWarmInstructions).
	WarmInstructions uint64
	// RunInstructions are timed.
	RunInstructions uint64
	// Seed makes the synthetic trace deterministic; the same seed gives
	// the identical instruction stream to every design.
	Seed int64
	// UseDRAM replaces the Table 3 flat 300-cycle memory with the banked
	// DRAM model (channels, banks, row buffers) — the substrate extension
	// for memory-system sensitivity studies.
	UseDRAM bool
	// BitErrorRate enables transmission-line noise injection with
	// end-to-end SEC-DED ECC at the controller (TLC designs only):
	// single-bit upsets are corrected in place, detected double-bit
	// errors cost a retry round trip. Zero disables injection.
	BitErrorRate float64
}

// DefaultOptions returns the standard scaled run: automatic functional
// warm-up (4-24 M instructions, scaled to the benchmark's hot set) and 2 M
// timed instructions (the paper runs 0.5-1 B warm and 500 M timed on
// Simics; Section 4 of DESIGN.md discusses the scaling).
func DefaultOptions() Options {
	return Options{RunInstructions: 2_000_000, Seed: 1}
}

// Result is the outcome of one (design, benchmark) run.
type Result struct {
	Design    Design
	Benchmark string

	// Core-level results.
	Instructions uint64
	Cycles       uint64
	IPC          float64

	// L2 request statistics (Table 6).
	L2Loads         uint64
	L2Stores        uint64
	MissesPer1K     float64
	MeanLookup      float64
	PredictablePct  float64
	BanksPerRequest float64

	// Interconnect results.
	LinkUtilization float64 // TLC designs only (Figure 7)
	NetworkPowerW   float64 // Table 9

	// DNUCA-specific results (Table 6).
	CloseHitPct       float64
	PromotesPerInsert float64

	// Reliability results (TLC designs with a nonzero BitErrorRate).
	ECCCorrections uint64
	ECCRetries     uint64
}

// instance couples a design implementation with its design-specific
// reporting hooks.
type instance struct {
	cache l2.Cache
	stats func() *l2.Stats
	// finish folds design-specific metrics into the result after the run.
	finish func(res *Result, cycles sim.Time)
}

// build instantiates a design.
func build(d Design, opt Options) instance {
	sys := config.DefaultSystem()
	var memory l2.Memory
	if opt.UseDRAM {
		memory = dram.New(dram.Default())
	}
	switch d {
	case config.SNUCA2:
		s := nuca.NewSNUCA(sys.MemoryLatency)
		if memory != nil {
			s.SetMemory(memory)
		}
		return instance{
			cache: s,
			stats: s.L2Stats,
			finish: func(res *Result, cycles sim.Time) {
				res.NetworkPowerW = power.MeshDynamicPowerW(s.Mesh(), cycles)
			},
		}
	case config.DNUCA:
		dn := nuca.NewDNUCA(sys.MemoryLatency)
		if memory != nil {
			dn.SetMemory(memory)
		}
		return instance{
			cache: dn,
			stats: dn.L2Stats,
			finish: func(res *Result, cycles sim.Time) {
				res.NetworkPowerW = power.MeshDynamicPowerW(dn.Mesh(), cycles)
				res.CloseHitPct = dn.CloseHitPct()
				res.PromotesPerInsert = dn.PromotesPerInsert()
			},
		}
	default:
		tc := tlcache.New(d, sys.MemoryLatency)
		if memory != nil {
			tc.SetMemory(memory)
		}
		if opt.BitErrorRate > 0 {
			tc.SetNoise(opt.BitErrorRate)
		}
		return instance{
			cache: tc,
			stats: tc.L2Stats,
			finish: func(res *Result, cycles sim.Time) {
				res.NetworkPowerW = power.TLCDynamicPowerW(tc, cycles)
				res.LinkUtilization = tc.LinkUtilization(cycles)
				res.ECCCorrections = tc.ECCCorrections
				res.ECCRetries = tc.ECCRetries
			},
		}
	}
}

// Run simulates one benchmark on one design.
func Run(d Design, benchmark string, opt Options) (Result, error) {
	spec, ok := workload.SpecByName(benchmark)
	if !ok {
		return Result{}, fmt.Errorf("tlc: unknown benchmark %q", benchmark)
	}
	return RunSpec(d, spec, opt), nil
}

// RunSpec simulates a custom workload spec on one design.
func RunSpec(d Design, spec workload.Spec, opt Options) Result {
	sys := config.DefaultSystem()
	inst := build(d, opt)
	gen := workload.New(spec, opt.Seed)
	core := cpu.New(sys, inst.cache)
	// Pre-warm installs the whole footprint so capacity state matches a
	// long-running process, then the trace warm-up establishes recency and
	// migration steady state.
	gen.PreWarm(inst.cache)
	warm := opt.WarmInstructions
	if warm == 0 {
		warm = spec.AutoWarmInstructions()
	}
	core.Warm(gen, warm)
	cr := core.Run(gen, opt.RunInstructions)

	st := inst.stats()
	res := Result{
		Design:          d,
		Benchmark:       spec.Name,
		Instructions:    cr.Instructions,
		Cycles:          uint64(cr.Cycles),
		IPC:             cr.IPC(),
		L2Loads:         st.Loads.Value(),
		L2Stores:        st.Stores.Value(),
		MissesPer1K:     st.MissesPer1K(cr.Instructions),
		MeanLookup:      st.Lookup.Mean(),
		PredictablePct:  st.PredictablePct(),
		BanksPerRequest: st.BanksPerRequest(),
	}
	inst.finish(&res, cr.Cycles)
	return res
}

// SeedStats summarizes a metric across seeds: the reproduction's
// seed-robustness check.
type SeedStats struct {
	Mean, Min, Max float64
}

// Spread reports (max-min)/mean, a unitless robustness measure.
func (s SeedStats) Spread() float64 {
	if s.Mean == 0 {
		return 0
	}
	return (s.Max - s.Min) / s.Mean
}

// RunSeeds runs one (design, benchmark) pair across several seeds and
// summarizes cycles, mean lookup latency, and misses/1K. Conclusions that
// survive the seed sweep are workload-structure effects, not artifacts of
// one random stream.
func RunSeeds(d Design, benchmark string, opt Options, seeds []int64) (cycles, lookup, misses SeedStats, err error) {
	if len(seeds) == 0 {
		return cycles, lookup, misses, fmt.Errorf("tlc: no seeds")
	}
	summ := func(vals []float64) SeedStats {
		st := SeedStats{Min: vals[0], Max: vals[0]}
		for _, v := range vals {
			st.Mean += v
			if v < st.Min {
				st.Min = v
			}
			if v > st.Max {
				st.Max = v
			}
		}
		st.Mean /= float64(len(vals))
		return st
	}
	var cs, ls, ms []float64
	for _, seed := range seeds {
		o := opt
		o.Seed = seed
		res, rerr := Run(d, benchmark, o)
		if rerr != nil {
			return cycles, lookup, misses, rerr
		}
		cs = append(cs, float64(res.Cycles))
		ls = append(ls, res.MeanLookup)
		ms = append(ms, res.MissesPer1K)
	}
	return summ(cs), summ(ls), summ(ms), nil
}

// AreaBreakdown is one Table 7 row.
type AreaBreakdown = area.Breakdown

// Area reports the substrate-area breakdown of a design (Table 7).
func Area(d Design) AreaBreakdown { return area.DesignArea(d) }

// NetworkTransistors is one Table 8 row.
type NetworkTransistors = area.NetworkTransistors

// Transistors reports the communication-network transistor demand of a
// design (Table 8).
func Transistors(d Design) NetworkTransistors { return area.DesignTransistors(d) }

// LineReport is the physical analysis of one transmission-line geometry.
type LineReport = tline.Signal

// AnalyzeLines runs the Table 1 geometries through the physical model:
// extraction, flight time, and signal-integrity acceptance.
func AnalyzeLines() []LineReport {
	var out []LineReport
	for _, g := range tline.Table1() {
		out = append(out, tline.Analyze(g))
	}
	return out
}

// UncontendedRange reports a design's Table 2 uncontended-latency range.
func UncontendedRange(d Design) (min, max uint64) {
	sys := config.DefaultSystem()
	switch d {
	case config.SNUCA2:
		a, b := nuca.NewSNUCA(sys.MemoryLatency).NominalRange()
		return uint64(a), uint64(b)
	case config.DNUCA:
		a, b := nuca.NewDNUCA(sys.MemoryLatency).NominalRange()
		return uint64(a), uint64(b)
	default:
		a, b := tlcache.New(d, sys.MemoryLatency).NominalRange()
		return uint64(a), uint64(b)
	}
}

// TotalLines reports a TLC design's transmission-line count (Table 2);
// zero for the NUCA designs.
func TotalLines(d Design) int {
	switch d {
	case config.SNUCA2, config.DNUCA:
		return 0
	default:
		return config.TLCFor(d).TotalLines()
	}
}

// MeshSegments exposes the NUCA mesh segment count for reporting; zero for
// TLC designs.
func MeshSegments(d Design) int {
	switch d {
	case config.SNUCA2, config.DNUCA:
		return noc.New(config.NUCAFor(d).Mesh).SegmentCount()
	default:
		return 0
	}
}
