// Package tlc is the public API of this reproduction of "TLC: Transmission
// Line Caches" (Beckmann & Wood, MICRO 2003). It builds any of the paper's
// six level-2 cache designs, runs the twelve synthetic benchmarks against
// them on the Table 3 processor model, and reports every metric the
// paper's tables and figures use.
//
// Quick start:
//
//	res, err := tlc.Run(tlc.DesignTLC, "gcc", tlc.DefaultOptions())
//	fmt.Printf("IPC %.3f, mean L2 lookup %.1f cycles\n", res.IPC, res.MeanLookup)
//
// The per-design physical models are also exposed: tlc.Area and
// tlc.Transistors reproduce Tables 7-8, and tlc.AnalyzeLines the Table 1
// signal-integrity study.
package tlc

import (
	"fmt"
	"hash/fnv"

	"tlc/internal/area"
	"tlc/internal/config"
	"tlc/internal/cpu"
	"tlc/internal/dram"
	"tlc/internal/l2"
	"tlc/internal/noc"
	"tlc/internal/nuca"
	"tlc/internal/power"
	"tlc/internal/sample"
	"tlc/internal/sim"
	"tlc/internal/snapshot"
	"tlc/internal/stats"
	"tlc/internal/tlcache"
	"tlc/internal/tline"
	"tlc/internal/workload"
)

// Design identifies one of the six evaluated cache designs.
type Design = config.Design

// The six designs of Table 2.
const (
	DesignSNUCA2     = config.SNUCA2
	DesignDNUCA      = config.DNUCA
	DesignTLC        = config.TLC
	DesignTLCOpt1000 = config.TLCOpt1000
	DesignTLCOpt500  = config.TLCOpt500
	DesignTLCOpt350  = config.TLCOpt350
)

// Designs lists every design in Table 2 order.
func Designs() []Design { return config.AllDesigns() }

// TLCFamily lists the four transmission-line designs (Figures 7-8).
func TLCFamily() []Design { return config.TLCFamily() }

// Benchmarks lists the twelve benchmark names in Table 6 order.
func Benchmarks() []string { return workload.Names() }

// Options controls one simulation run.
type Options struct {
	// WarmInstructions run functionally before timing starts. Zero means
	// automatic: enough to converge the hot working set's placement
	// (workload.Spec.AutoWarmInstructions).
	WarmInstructions uint64
	// RunInstructions are timed.
	RunInstructions uint64
	// Seed makes the synthetic trace deterministic; the same seed gives
	// the identical instruction stream to every design.
	Seed int64
	// UseDRAM replaces the Table 3 flat 300-cycle memory with the banked
	// DRAM model (channels, banks, row buffers) — the substrate extension
	// for memory-system sensitivity studies.
	UseDRAM bool
	// BitErrorRate enables transmission-line noise injection with
	// end-to-end SEC-DED ECC at the controller (TLC designs only):
	// single-bit upsets are corrected in place, detected double-bit
	// errors cost a retry round trip. Zero disables injection.
	BitErrorRate float64

	// WarmSeed, when nonzero, seeds the warm-up stream separately from
	// the timed run: after warm-up the generator reseeds with Seed, so a
	// seed sweep measures every seed from one shared warmed machine state
	// (and one shared checkpoint). Zero warms with Seed itself.
	WarmSeed int64

	// Checkpoints, when non-nil, caches post-warm machine state keyed by
	// (design configuration, benchmark, warm seed, warm length). A run
	// whose key is present restores the state and skips warm-up entirely;
	// restored runs are bit-identical to runs that re-executed the
	// warm-up, because warm-up is purely functional. Share one store
	// across runs/goroutines to amortize warm-up; see NewCheckpointStore.
	Checkpoints *CheckpointStore

	// SampleIntervals, when positive, switches timing to SMARTS-style
	// sampled execution: SampleIntervals detailed intervals of
	// SampleLength instructions each, separated by functional
	// fast-forwarding, covering RunInstructions in total. Cycle counts
	// are estimated from per-interval CPI; RunSampled additionally
	// reports 95% confidence intervals.
	SampleIntervals int
	// SampleLength is the detailed instructions per interval (used only
	// when SampleIntervals > 0).
	SampleLength uint64
}

// SampleOptions projects the sampling fields.
func (o Options) SampleOptions() sample.Options {
	return sample.Options{Intervals: o.SampleIntervals, Length: o.SampleLength}
}

// CheckpointStore holds warm-state checkpoints: an in-process LRU with an
// optional on-disk tier. See internal/snapshot for the determinism
// contract.
type CheckpointStore = snapshot.Store

// NewCheckpointStore builds a checkpoint store holding up to capacity
// checkpoints in memory (a default when capacity <= 0). A non-empty dir
// adds a persistent tier shared across processes (the CLIs' -ckptdir).
func NewCheckpointStore(capacity int, dir string) *CheckpointStore {
	return snapshot.NewStore(capacity, dir)
}

// DefaultOptions returns the standard scaled run: automatic functional
// warm-up (4-24 M instructions, scaled to the benchmark's hot set) and 2 M
// timed instructions (the paper runs 0.5-1 B warm and 500 M timed on
// Simics; Section 4 of DESIGN.md discusses the scaling).
func DefaultOptions() Options {
	return Options{RunInstructions: 2_000_000, Seed: 1}
}

// Result is the outcome of one (design, benchmark) run.
type Result struct {
	Design    Design
	Benchmark string

	// Core-level results.
	Instructions uint64
	Cycles       uint64
	IPC          float64

	// L2 request statistics (Table 6).
	L2Loads         uint64
	L2Stores        uint64
	MissesPer1K     float64
	MeanLookup      float64
	PredictablePct  float64
	BanksPerRequest float64

	// Interconnect results.
	LinkUtilization float64 // TLC designs only (Figure 7)
	NetworkPowerW   float64 // Table 9

	// DNUCA-specific results (Table 6).
	CloseHitPct       float64
	PromotesPerInsert float64

	// Reliability results (TLC designs with a nonzero BitErrorRate).
	ECCCorrections uint64
	ECCRetries     uint64
}

// instance couples a design implementation with its design-specific
// reporting hooks.
type instance struct {
	cache l2.Cache
	stats func() *l2.Stats
	// finish folds design-specific metrics into the result after the run.
	finish func(res *Result, cycles sim.Time)
}

// build instantiates a design.
func build(d Design, opt Options) instance {
	sys := config.DefaultSystem()
	var memory l2.Memory
	if opt.UseDRAM {
		memory = dram.New(dram.Default())
	}
	switch d {
	case config.SNUCA2:
		s := nuca.NewSNUCA(sys.MemoryLatency)
		if memory != nil {
			s.SetMemory(memory)
		}
		return instance{
			cache: s,
			stats: s.L2Stats,
			finish: func(res *Result, cycles sim.Time) {
				res.NetworkPowerW = power.MeshDynamicPowerW(s.Mesh(), cycles)
			},
		}
	case config.DNUCA:
		dn := nuca.NewDNUCA(sys.MemoryLatency)
		if memory != nil {
			dn.SetMemory(memory)
		}
		return instance{
			cache: dn,
			stats: dn.L2Stats,
			finish: func(res *Result, cycles sim.Time) {
				res.NetworkPowerW = power.MeshDynamicPowerW(dn.Mesh(), cycles)
				res.CloseHitPct = dn.CloseHitPct()
				res.PromotesPerInsert = dn.PromotesPerInsert()
			},
		}
	default:
		tc := tlcache.New(d, sys.MemoryLatency)
		if memory != nil {
			tc.SetMemory(memory)
		}
		if opt.BitErrorRate > 0 {
			tc.SetNoise(opt.BitErrorRate)
		}
		return instance{
			cache: tc,
			stats: tc.L2Stats,
			finish: func(res *Result, cycles sim.Time) {
				res.NetworkPowerW = power.TLCDynamicPowerW(tc, cycles)
				res.LinkUtilization = tc.LinkUtilization(cycles)
				res.ECCCorrections = tc.ECCCorrections
				res.ECCRetries = tc.ECCRetries
			},
		}
	}
}

// Run simulates one benchmark on one design. With SampleIntervals set it
// runs in sampled mode (RunSampled exposes the confidence intervals the
// plain Result drops).
func Run(d Design, benchmark string, opt Options) (Result, error) {
	spec, ok := workload.SpecByName(benchmark)
	if !ok {
		return Result{}, fmt.Errorf("tlc: unknown benchmark %q", benchmark)
	}
	return RunSpec(d, spec, opt)
}

// checkpointFormat versions the warm-state layout. Bump it whenever the
// captured state's shape or semantics change, so stale on-disk checkpoints
// miss instead of restoring garbage.
const checkpointFormat = 1

// configHash keys checkpoints by everything that shapes post-warm machine
// state: the design and its parameters, the system (L1 geometry), and the
// workload spec. Over-keying (including parameters warm-up ignores) only
// costs spurious misses; under-keying would silently restore wrong state.
func configHash(d Design, spec workload.Spec) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d|%s|%+v|%+v|", checkpointFormat, d, config.DefaultSystem(), spec)
	switch d {
	case config.SNUCA2, config.DNUCA:
		fmt.Fprintf(h, "%+v", config.NUCAFor(d))
	default:
		fmt.Fprintf(h, "%+v", config.TLCFor(d))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// prepare builds the machine for a run and brings it to measured-interval
// start: post-warm cache state with the generator positioned (and seeded)
// for the timed stream. Warm-up restores from opt.Checkpoints when
// possible, re-executing (and storing the result) otherwise.
func prepare(d Design, spec workload.Spec, opt Options) (instance, *cpu.Core, *workload.Generator) {
	sys := config.DefaultSystem()
	inst := build(d, opt)
	warmSeed := opt.WarmSeed
	if warmSeed == 0 {
		warmSeed = opt.Seed
	}
	warm := opt.WarmInstructions
	if warm == 0 {
		warm = spec.AutoWarmInstructions()
	}
	gen := workload.New(spec, warmSeed)
	core := cpu.New(sys, inst.cache)

	key := snapshot.Key{Config: configHash(d, spec), Bench: spec.Name, Seed: warmSeed, Warm: warm}
	restored := false
	if opt.Checkpoints != nil {
		if ckp, ok := opt.Checkpoints.Get(key); ok {
			restored = restoreCheckpoint(ckp, core, inst.cache, gen)
		}
	}
	if !restored {
		// Pre-warm installs the whole footprint so capacity state matches
		// a long-running process, then the trace warm-up establishes
		// recency and migration steady state.
		gen.PreWarm(inst.cache)
		core.Warm(gen, warm)
		if opt.Checkpoints != nil {
			if snap, ok := inst.cache.(l2.Snapshotter); ok {
				opt.Checkpoints.Put(key, snapshot.Checkpoint{
					Core: core.Snapshot(),
					L2:   snap.SnapshotState(),
					Gen:  gen.State(),
				})
			}
		}
	}
	if opt.Seed != warmSeed {
		// The timed interval measures its own stream: decorrelate it from
		// the (shared) warm-up stream.
		gen.Reseed(opt.Seed)
	}
	return inst, core, gen
}

// restoreCheckpoint applies a stored checkpoint; a false return (type or
// geometry mismatch, e.g. a stale disk entry) falls back to re-warming.
func restoreCheckpoint(ckp snapshot.Checkpoint, core *cpu.Core, c l2.Cache, gen *workload.Generator) bool {
	snap, ok := c.(l2.Snapshotter)
	if !ok {
		return false
	}
	if err := core.Restore(ckp.Core); err != nil {
		return false
	}
	if err := snap.RestoreState(ckp.L2); err != nil {
		return false
	}
	gen.SetState(ckp.Gen)
	return true
}

// RunSpec simulates a custom workload spec on one design.
func RunSpec(d Design, spec workload.Spec, opt Options) (Result, error) {
	if opt.SampleIntervals > 0 {
		sres, err := RunSpecSampled(d, spec, opt)
		return sres.Result, err
	}
	inst, core, gen := prepare(d, spec, opt)
	cr := core.Run(gen, opt.RunInstructions)

	st := inst.stats()
	res := Result{
		Design:          d,
		Benchmark:       spec.Name,
		Instructions:    cr.Instructions,
		Cycles:          uint64(cr.Cycles),
		IPC:             cr.IPC(),
		L2Loads:         st.Loads.Value(),
		L2Stores:        st.Stores.Value(),
		MissesPer1K:     st.MissesPer1K(cr.Instructions),
		MeanLookup:      st.Lookup.Mean(),
		PredictablePct:  st.PredictablePct(),
		BanksPerRequest: st.BanksPerRequest(),
	}
	inst.finish(&res, cr.Cycles)
	return res, nil
}

// SampledResult is a Result estimated by sampled execution, plus the 95%
// confidence half-widths interval-to-interval variation puts on the
// estimated metrics. A CI of 0 with few intervals means "unknown", not
// "exact"; use 8+ intervals for honest intervals.
type SampledResult struct {
	Result
	// CyclesCI is the 95% confidence half-width on Cycles.
	CyclesCI float64
	// MeanLookupCI is the 95% confidence half-width on MeanLookup.
	MeanLookupCI float64
	// MissesPer1KCI is the 95% confidence half-width on MissesPer1K.
	MissesPer1KCI float64
	// Intervals and DetailedInstructions report the sampling shape used.
	Intervals            int
	DetailedInstructions uint64
}

// RunSampled simulates one benchmark on one design in sampled mode.
func RunSampled(d Design, benchmark string, opt Options) (SampledResult, error) {
	spec, ok := workload.SpecByName(benchmark)
	if !ok {
		return SampledResult{}, fmt.Errorf("tlc: unknown benchmark %q", benchmark)
	}
	return RunSpecSampled(d, spec, opt)
}

// RunSpecSampled simulates a custom workload spec on one design in sampled
// mode: SampleIntervals detailed intervals of SampleLength instructions,
// interleaved with functional fast-forwarding, standing in for a full
// RunInstructions-long detailed run.
func RunSpecSampled(d Design, spec workload.Spec, opt Options) (SampledResult, error) {
	sopt := opt.SampleOptions()
	if err := sopt.Validate(opt.RunInstructions); err != nil {
		return SampledResult{}, err
	}
	inst, core, gen := prepare(d, spec, opt)

	// Per-interval L2 stat deltas feed the lookup-latency and miss-rate
	// confidence intervals.
	st := inst.stats()
	var lookup, missRate stats.Sample
	var prevLookupSum, prevLookupCount, prevMisses uint64
	est := sample.Run(core, gen, opt.RunInstructions, sopt, func(iv sample.Interval) {
		dSum := st.Lookup.Sum() - prevLookupSum
		dCount := st.Lookup.Count() - prevLookupCount
		dMiss := st.Misses.Value() - prevMisses
		prevLookupSum, prevLookupCount, prevMisses = st.Lookup.Sum(), st.Lookup.Count(), st.Misses.Value()
		if dCount > 0 {
			lookup.Observe(float64(dSum) / float64(dCount))
		}
		missRate.Observe(1000 * float64(dMiss) / float64(iv.Result.Instructions))
	})

	estCycles := est.Cycles()
	res := Result{
		Design:       d,
		Benchmark:    spec.Name,
		Instructions: opt.RunInstructions,
		Cycles:       uint64(estCycles + 0.5),
		// The L2 counters cover only the detailed instructions; rates are
		// computed over that denominator, and the absolute load/store
		// counts are scaled to the full run like the cycle estimate.
		L2Loads:         scaleCount(st.Loads.Value(), opt.RunInstructions, est.Detailed),
		L2Stores:        scaleCount(st.Stores.Value(), opt.RunInstructions, est.Detailed),
		MissesPer1K:     st.MissesPer1K(est.Detailed),
		MeanLookup:      st.Lookup.Mean(),
		PredictablePct:  st.PredictablePct(),
		BanksPerRequest: st.BanksPerRequest(),
	}
	if estCycles > 0 {
		res.IPC = float64(opt.RunInstructions) / estCycles
	}
	// Power and utilization integrate over the detailed window: the clock
	// only advances during detailed intervals, so FinalClock is that
	// window's span.
	inst.finish(&res, est.FinalClock)
	return SampledResult{
		Result:               res,
		CyclesCI:             est.CyclesCI(),
		MeanLookupCI:         lookup.CI95(),
		MissesPer1KCI:        missRate.CI95(),
		Intervals:            est.Intervals,
		DetailedInstructions: est.Detailed,
	}, nil
}

// scaleCount extrapolates a detailed-interval event count to the full run.
func scaleCount(n, total, detailed uint64) uint64 {
	if detailed == 0 {
		return n
	}
	return uint64(float64(n)*float64(total)/float64(detailed) + 0.5)
}

// SeedStats summarizes a metric across seeds: the reproduction's
// seed-robustness check.
type SeedStats struct {
	Mean, Min, Max float64
}

// Spread reports (max-min)/mean, a unitless robustness measure.
func (s SeedStats) Spread() float64 {
	if s.Mean == 0 {
		return 0
	}
	return (s.Max - s.Min) / s.Mean
}

// RunSeeds runs one (design, benchmark) pair across several seeds and
// summarizes cycles, mean lookup latency, and misses/1K. Conclusions that
// survive the seed sweep are workload-structure effects, not artifacts of
// one random stream.
//
// The sweep warms up once: every seed measures from the machine state the
// first seed's warm-up produced (WarmSeed pins the warm stream; the timed
// stream reseeds per seed). Warm-up is paid once via the checkpoint store —
// opt.Checkpoints if provided, else a sweep-local one — so seeds after the
// first skip it entirely.
func RunSeeds(d Design, benchmark string, opt Options, seeds []int64) (cycles, lookup, misses SeedStats, err error) {
	if len(seeds) == 0 {
		return cycles, lookup, misses, fmt.Errorf("tlc: no seeds")
	}
	if opt.WarmSeed == 0 {
		opt.WarmSeed = seeds[0]
	}
	if opt.Checkpoints == nil {
		opt.Checkpoints = NewCheckpointStore(0, "")
	}
	summ := func(vals []float64) SeedStats {
		st := SeedStats{Min: vals[0], Max: vals[0]}
		for _, v := range vals {
			st.Mean += v
			if v < st.Min {
				st.Min = v
			}
			if v > st.Max {
				st.Max = v
			}
		}
		st.Mean /= float64(len(vals))
		return st
	}
	var cs, ls, ms []float64
	for _, seed := range seeds {
		o := opt
		o.Seed = seed
		res, rerr := Run(d, benchmark, o)
		if rerr != nil {
			return cycles, lookup, misses, rerr
		}
		cs = append(cs, float64(res.Cycles))
		ls = append(ls, res.MeanLookup)
		ms = append(ms, res.MissesPer1K)
	}
	return summ(cs), summ(ls), summ(ms), nil
}

// AreaBreakdown is one Table 7 row.
type AreaBreakdown = area.Breakdown

// Area reports the substrate-area breakdown of a design (Table 7).
func Area(d Design) AreaBreakdown { return area.DesignArea(d) }

// NetworkTransistors is one Table 8 row.
type NetworkTransistors = area.NetworkTransistors

// Transistors reports the communication-network transistor demand of a
// design (Table 8).
func Transistors(d Design) NetworkTransistors { return area.DesignTransistors(d) }

// LineReport is the physical analysis of one transmission-line geometry.
type LineReport = tline.Signal

// AnalyzeLines runs the Table 1 geometries through the physical model:
// extraction, flight time, and signal-integrity acceptance.
func AnalyzeLines() []LineReport {
	var out []LineReport
	for _, g := range tline.Table1() {
		out = append(out, tline.Analyze(g))
	}
	return out
}

// UncontendedRange reports a design's Table 2 uncontended-latency range.
func UncontendedRange(d Design) (min, max uint64) {
	sys := config.DefaultSystem()
	switch d {
	case config.SNUCA2:
		a, b := nuca.NewSNUCA(sys.MemoryLatency).NominalRange()
		return uint64(a), uint64(b)
	case config.DNUCA:
		a, b := nuca.NewDNUCA(sys.MemoryLatency).NominalRange()
		return uint64(a), uint64(b)
	default:
		a, b := tlcache.New(d, sys.MemoryLatency).NominalRange()
		return uint64(a), uint64(b)
	}
}

// TotalLines reports a TLC design's transmission-line count (Table 2);
// zero for the NUCA designs.
func TotalLines(d Design) int {
	switch d {
	case config.SNUCA2, config.DNUCA:
		return 0
	default:
		return config.TLCFor(d).TotalLines()
	}
}

// MeshSegments exposes the NUCA mesh segment count for reporting; zero for
// TLC designs.
func MeshSegments(d Design) int {
	switch d {
	case config.SNUCA2, config.DNUCA:
		return noc.New(config.NUCAFor(d).Mesh).SegmentCount()
	default:
		return 0
	}
}
