package tlc

import (
	"reflect"
	"testing"

	"tlc/internal/config"
	"tlc/internal/cpu"
	"tlc/internal/snapshot"
	"tlc/internal/workload"
)

// laneTestOptions is the reduced scale the lane equivalence grid runs at —
// the same lengths as the batched/scalar equivalence gate.
func laneTestOptions() Options {
	return Options{WarmInstructions: 150_000, RunInstructions: 40_000, Seed: 1}
}

// TestLaneScalarEquivalence is the lane engine's correctness gate: for all
// twelve benchmarks × all six designs, a run restored from a lane-parallel
// warm pass (one shared stream warming every design at once) produces the
// identical Result as an independent scalar run that warmed itself.
func TestLaneScalarEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid; skipped in -short")
	}
	for _, bench := range Benchmarks() {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			laneOpt := laneTestOptions()
			laneOpt.Checkpoints = NewCheckpointStore(0, "")
			st, err := WarmLanes(Designs(), bench, laneOpt)
			if err != nil {
				t.Fatal(err)
			}
			if st.Lanes != len(Designs()) {
				t.Fatalf("lane pass warmed %d lanes, want %d", st.Lanes, len(Designs()))
			}
			if st.Batches == 0 {
				t.Fatal("lane pass consumed no batches")
			}
			for _, d := range Designs() {
				want, err := Run(d, bench, laneTestOptions())
				if err != nil {
					t.Fatal(err)
				}
				got, err := Run(d, bench, laneOpt)
				if err != nil {
					t.Fatal(err)
				}
				if want != got {
					t.Errorf("%v: lane-warmed run diverged:\nscalar %+v\nlane   %+v", d, want, got)
				}
			}
		})
	}
}

// TestLaneScalarEquivalenceSampled extends the gate to sampled mode:
// restoring a lane-warmed checkpoint under SMARTS-style sampling must leave
// every estimate and confidence interval identical to a self-warmed run.
// The lane-restored run's registry carries one extra provenance counter
// (sim.lanes.restored), which is excluded from the per-counter comparison.
func TestLaneScalarEquivalenceSampled(t *testing.T) {
	benches := []string{"gcc", "equake", "oltp"}
	base := laneTestOptions()
	base.RunInstructions = 200_000
	base.SampleIntervals = 8
	base.SampleLength = 2000
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			laneOpt := base
			laneOpt.Checkpoints = NewCheckpointStore(0, "")
			if _, err := WarmLanes(Designs(), bench, laneOpt); err != nil {
				t.Fatal(err)
			}
			for _, d := range Designs() {
				want, err := RunSampled(d, bench, base)
				if err != nil {
					t.Fatal(err)
				}
				got, err := RunSampled(d, bench, laneOpt)
				if err != nil {
					t.Fatal(err)
				}
				got.Metrics = dropMetricCI(got.Metrics, "sim.lanes.restored")
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%v: sampled lane-warmed run diverged:\nscalar %+v\nlane   %+v", d, want, got)
				}
			}
		})
	}
}

func dropMetricCI(ms []MetricCI, name string) []MetricCI {
	out := ms[:0]
	for _, m := range ms {
		if m.Name != name {
			out = append(out, m)
		}
	}
	return out
}

// TestLaneCheckpointInterop pins the snapshot interaction both ways, per
// config key, across all six designs: a lane pass stores checkpoints
// bit-identical (bar the provenance flag) to the ones scalar warm-up
// stores, a lane pass over an already scalar-warmed store is a no-op, and
// runs restoring either kind produce identical results.
func TestLaneCheckpointInterop(t *testing.T) {
	const bench = "mcf"
	spec, ok := workload.SpecByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", bench)
	}
	opt := laneTestOptions()

	laneOpt := opt
	laneOpt.Checkpoints = NewCheckpointStore(0, "")
	st, err := WarmLanes(Designs(), bench, laneOpt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Lanes != len(Designs()) {
		t.Fatalf("lane pass warmed %d lanes, want %d", st.Lanes, len(Designs()))
	}

	scalarOpt := opt
	scalarOpt.Checkpoints = NewCheckpointStore(0, "")
	for _, d := range Designs() {
		if _, err := Run(d, bench, scalarOpt); err != nil {
			t.Fatal(err)
		}
	}

	warmSeed, warm := warmPlan(spec, opt)
	for _, d := range Designs() {
		key := snapshot.Key{Config: configHash(d, spec, singleCoreCMP(), opt.fidelity()), Bench: bench, Seed: warmSeed, Warm: warm}
		lc, ok := laneOpt.Checkpoints.Get(key)
		if !ok {
			t.Fatalf("%v: lane store has no checkpoint", d)
		}
		sc, ok := scalarOpt.Checkpoints.Get(key)
		if !ok {
			t.Fatalf("%v: scalar store has no checkpoint", d)
		}
		if !lc.Lanes || sc.Lanes {
			t.Errorf("%v: provenance flags wrong: lane=%v scalar=%v", d, lc.Lanes, sc.Lanes)
		}
		if !reflect.DeepEqual(lc.Core, sc.Core) {
			t.Errorf("%v: lane and scalar checkpoints differ in core state", d)
		}
		if !reflect.DeepEqual(lc.L2, sc.L2) {
			t.Errorf("%v: lane and scalar checkpoints differ in L2 state", d)
		}
		if !reflect.DeepEqual(lc.Gen, sc.Gen) {
			t.Errorf("%v: lane and scalar checkpoints differ in generator state", d)
		}
	}

	// A lane pass over the scalar-warmed store finds every key present and
	// shares nothing — exactly the skip path grid replans exercise.
	st, err = WarmLanes(Designs(), bench, scalarOpt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Lanes != 0 || st.Batches != 0 {
		t.Errorf("replanned lane pass ran anyway: %+v", st)
	}

	// Cross-restore: a run restoring the lane-warmed checkpoint and one
	// restoring the scalar-warmed checkpoint are the same run.
	for _, d := range Designs() {
		lr, err := Run(d, bench, laneOpt)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := Run(d, bench, scalarOpt)
		if err != nil {
			t.Fatal(err)
		}
		if lr != sr {
			t.Errorf("%v: cross-restored runs diverged:\nlane   %+v\nscalar %+v", d, lr, sr)
		}
	}
}

// TestWarmLanesNoOps pins the accelerator contract: no checkpoint store or
// fewer than two distinct lanes means the pass does nothing.
func TestWarmLanesNoOps(t *testing.T) {
	opt := laneTestOptions()
	if st, err := WarmLanes(Designs(), "mcf", opt); err != nil || st.Lanes != 0 {
		t.Errorf("storeless pass: stats %+v err %v, want zero stats", st, err)
	}
	opt.Checkpoints = NewCheckpointStore(0, "")
	if st, err := WarmLanes([]Design{DesignTLC}, "mcf", opt); err != nil || st.Lanes != 0 {
		t.Errorf("single-design pass: stats %+v err %v, want zero stats", st, err)
	}
	// Duplicates collapse to one lane — still nothing to share.
	if st, err := WarmLanes([]Design{DesignTLC, DesignTLC}, "mcf", opt); err != nil || st.Lanes != 0 {
		t.Errorf("duplicate-design pass: stats %+v err %v, want zero stats", st, err)
	}
	if _, err := WarmLanes(Designs(), "nosuch", opt); err == nil {
		t.Error("unknown benchmark: want error")
	}
}

// TestLaneWarmDoesNotAllocate pins the lane warm loop — shared stream fast
// path, SoA sweep, per-lane bulk L2 installs — at zero allocations per call
// once the warmer's buffers exist.
func TestLaneWarmDoesNotAllocate(t *testing.T) {
	spec, _ := workload.SpecByName("oltp")
	designs := []Design{DesignSNUCA2, DesignTLC, DesignTLCOpt500}
	gen := workload.New(spec, 1)
	cores := make([]*cpu.Core, len(designs))
	for i, d := range designs {
		inst := build(d, Options{})
		gen.PreWarm(inst)
		cores[i] = cpu.New(config.DefaultSystem(), inst)
	}
	lw := cpu.NewLaneWarmer(cores)
	if err := lw.Warm(gen, 200_000, nil); err != nil { // allocate the batch buffers
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if err := lw.Warm(gen, 50_000, nil); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("lane warm allocates %.2f per call, want 0", allocs)
	}
}
