package tlc

import (
	"testing"
)

// testOptions keeps integration tests fast.
func testOptions() Options {
	return Options{WarmInstructions: 1_000_000, RunInstructions: 100_000, Seed: 1}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := Run(DesignTLC, "doom", testOptions()); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestRunProducesCoherentResult(t *testing.T) {
	res, err := Run(DesignTLC, "gcc", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Design != DesignTLC || res.Benchmark != "gcc" {
		t.Fatal("result identity wrong")
	}
	if res.Instructions != 100_000 || res.Cycles == 0 {
		t.Fatal("run did not execute")
	}
	if res.IPC <= 0 || res.IPC > 4 {
		t.Fatalf("IPC %v outside (0,4]", res.IPC)
	}
	if res.L2Loads == 0 || res.L2Stores == 0 {
		t.Fatal("no L2 traffic recorded")
	}
	if res.MeanLookup < 10 || res.MeanLookup > 60 {
		t.Fatalf("mean lookup %v implausible for TLC", res.MeanLookup)
	}
	if res.BanksPerRequest != 1 {
		t.Fatalf("base TLC banks/request %v, want 1", res.BanksPerRequest)
	}
	if res.LinkUtilization <= 0 || res.LinkUtilization > 0.5 {
		t.Fatalf("link utilization %v implausible", res.LinkUtilization)
	}
	if res.NetworkPowerW <= 0 {
		t.Fatal("no network power recorded")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	a, _ := Run(DesignDNUCA, "apache", testOptions())
	b, _ := Run(DesignDNUCA, "apache", testOptions())
	if a.Cycles != b.Cycles || a.MeanLookup != b.MeanLookup || a.CloseHitPct != b.CloseHitPct {
		t.Fatal("identical runs diverged")
	}
	opt2 := testOptions()
	opt2.Seed = 99
	c, _ := Run(DesignDNUCA, "apache", opt2)
	if a.Cycles == c.Cycles {
		t.Fatal("different seeds produced identical cycle counts")
	}
}

func TestSameTraceAcrossDesigns(t *testing.T) {
	// The comparison methodology requires every design to see the same
	// instruction stream: L2 request counts must match for designs with
	// identical L1 behaviour.
	a, _ := Run(DesignSNUCA2, "zeus", testOptions())
	b, _ := Run(DesignTLC, "zeus", testOptions())
	if a.L2Loads != b.L2Loads || a.L2Stores != b.L2Stores {
		t.Fatalf("designs saw different traffic: %d/%d vs %d/%d",
			a.L2Loads, a.L2Stores, b.L2Loads, b.L2Stores)
	}
}

func TestDesignListsComplete(t *testing.T) {
	if len(Designs()) != 6 {
		t.Fatal("six designs expected")
	}
	if len(TLCFamily()) != 4 {
		t.Fatal("four TLC designs expected")
	}
	if len(Benchmarks()) != 12 {
		t.Fatal("twelve benchmarks expected")
	}
}

func TestUncontendedRangesMatchTable2(t *testing.T) {
	want := map[Design][2]uint64{
		DesignTLC:        {10, 16},
		DesignTLCOpt1000: {12, 13},
		DesignTLCOpt500:  {12, 12},
		DesignTLCOpt350:  {12, 12},
		DesignSNUCA2:     {9, 32},
		DesignDNUCA:      {3, 47},
	}
	for d, r := range want {
		min, max := UncontendedRange(d)
		if min != r[0] || max != r[1] {
			t.Errorf("%v range %d-%d, want %d-%d", d, min, max, r[0], r[1])
		}
	}
}

func TestTotalLines(t *testing.T) {
	want := map[Design]int{
		DesignTLC: 2048, DesignTLCOpt1000: 1008, DesignTLCOpt500: 512,
		DesignTLCOpt350: 352, DesignSNUCA2: 0, DesignDNUCA: 0,
	}
	for d, lines := range want {
		if got := TotalLines(d); got != lines {
			t.Errorf("%v lines %d, want %d", d, got, lines)
		}
	}
}

func TestMeshSegments(t *testing.T) {
	if MeshSegments(DesignTLC) != 0 {
		t.Fatal("TLC has no mesh")
	}
	if MeshSegments(DesignDNUCA) == 0 || MeshSegments(DesignSNUCA2) == 0 {
		t.Fatal("NUCA designs must report mesh segments")
	}
}

func TestAnalyzeLinesAllPass(t *testing.T) {
	reps := AnalyzeLines()
	if len(reps) != 3 {
		t.Fatal("three Table 1 geometries expected")
	}
	for _, r := range reps {
		if !r.OK {
			t.Errorf("geometry %+v fails signal integrity", r.Geometry)
		}
	}
}

func TestAreaAndTransistorFacades(t *testing.T) {
	if Area(DesignTLC).TotalMM2() >= Area(DesignDNUCA).TotalMM2() {
		t.Fatal("TLC should use less substrate than DNUCA (Table 7)")
	}
	if Transistors(DesignTLC).Count*50 > Transistors(DesignDNUCA).Count {
		t.Fatal("DNUCA should need >50x the network transistors (Table 8)")
	}
}

func TestDNUCAResultIncludesDesignMetrics(t *testing.T) {
	res, _ := Run(DesignDNUCA, "gcc", testOptions())
	if res.CloseHitPct <= 0 {
		t.Fatal("DNUCA close-hit metric missing")
	}
	if res.LinkUtilization != 0 {
		t.Fatal("DNUCA has no transmission lines to utilize")
	}
}

func TestTLCFamilyUtilizationOrdering(t *testing.T) {
	// Figure 7's defining shape at small scale: fewer lines, higher
	// utilization.
	var prev float64
	for i, d := range TLCFamily() {
		res, _ := Run(d, "gcc", testOptions())
		if i > 0 && res.LinkUtilization <= prev {
			t.Fatalf("%v utilization %v not above its wider predecessor %v",
				d, res.LinkUtilization, prev)
		}
		prev = res.LinkUtilization
	}
}

func TestPredictabilityShape(t *testing.T) {
	// Table 6 columns 7-8: TLC must be far more predictable than DNUCA.
	tr, _ := Run(DesignTLC, "gcc", testOptions())
	dr, _ := Run(DesignDNUCA, "gcc", testOptions())
	if tr.PredictablePct <= dr.PredictablePct {
		t.Fatalf("TLC predictability %.1f%% should exceed DNUCA's %.1f%%",
			tr.PredictablePct, dr.PredictablePct)
	}
}

func TestDRAMBackedRun(t *testing.T) {
	opt := testOptions()
	opt.UseDRAM = true
	res, err := Run(DesignTLC, "swim", opt)
	if err != nil {
		t.Fatal(err)
	}
	flat, _ := Run(DesignTLC, "swim", testOptions())
	if res.Cycles == flat.Cycles {
		t.Fatal("the DRAM model should perturb a miss-heavy run")
	}
	// Same trace, same L2: only memory timing differs.
	if res.L2Loads != flat.L2Loads || res.MissesPer1K != flat.MissesPer1K {
		t.Fatal("memory model must not change functional behaviour")
	}
	// Stays in a plausible band: banked DRAM with open rows can be
	// faster or slower than flat-300 but not wildly different.
	ratio := float64(res.Cycles) / float64(flat.Cycles)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("DRAM-backed run ratio %.2f implausible", ratio)
	}
}

func TestBitErrorRateOption(t *testing.T) {
	opt := testOptions()
	opt.BitErrorRate = 1e-3
	res, err := Run(DesignTLC, "gcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.ECCCorrections == 0 {
		t.Fatal("BER option did not inject errors")
	}
	clean, _ := Run(DesignTLC, "gcc", testOptions())
	if clean.ECCCorrections != 0 {
		t.Fatal("ECC active without the option")
	}
	// Functional behaviour is preserved: ECC repairs or retries.
	if res.MissesPer1K != clean.MissesPer1K {
		t.Fatal("noise must not change hit/miss outcomes")
	}
}

func TestRunSeeds(t *testing.T) {
	cyc, lookup, _, err := RunSeeds(DesignTLC, "perl", testOptions(), []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if cyc.Mean <= 0 || lookup.Mean <= 0 {
		t.Fatal("seed summary empty")
	}
	if cyc.Min > cyc.Mean || cyc.Max < cyc.Mean {
		t.Fatal("seed summary ordering wrong")
	}
	if cyc.Spread() > 0.2 {
		t.Fatalf("cycles spread %.2f across seeds: conclusions are seed-fragile", cyc.Spread())
	}
	if _, _, _, err := RunSeeds(DesignTLC, "perl", testOptions(), nil); err == nil {
		t.Fatal("empty seed list should error")
	}
}
