package tlc

import (
	"sync"
	"testing"
)

// ckptOptions is the scale used by the checkpoint tests: a real warm-up
// (so there is state worth checkpointing) but a short timed interval.
func ckptOptions() Options {
	return Options{WarmInstructions: 1_000_000, RunInstructions: 100_000, Seed: 1}
}

func TestCheckpointedRunsAreBitIdentical(t *testing.T) {
	// The headline determinism guarantee: for every design, a run that
	// restores its warm state from a checkpoint produces a Result identical
	// in every field to one that re-executed the warm-up.
	for _, d := range Designs() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			opt := ckptOptions()
			plain, err := Run(d, "gcc", opt)
			if err != nil {
				t.Fatal(err)
			}
			store := NewCheckpointStore(0, "")
			opt.Checkpoints = store
			first, err := Run(d, "gcc", opt) // warm-up executes, checkpoint stored
			if err != nil {
				t.Fatal(err)
			}
			second, err := Run(d, "gcc", opt) // warm-up restored
			if err != nil {
				t.Fatal(err)
			}
			if first != plain {
				t.Fatalf("checkpoint-storing run diverged from plain run:\n%+v\n%+v", first, plain)
			}
			if second != plain {
				t.Fatalf("checkpoint-restored run diverged from plain run:\n%+v\n%+v", second, plain)
			}
			st := store.Stats()
			if st.Puts != 1 || st.Hits != 1 {
				t.Fatalf("store stats %+v, want exactly 1 put and 1 hit", st)
			}
		})
	}
}

func TestCheckpointDiskTierSurvivesProcesses(t *testing.T) {
	// A fresh store over the same directory (a new CLI invocation) must
	// restore the checkpoint and reproduce the run bit-identically.
	dir := t.TempDir()
	opt := ckptOptions()
	opt.Checkpoints = NewCheckpointStore(0, dir)
	want, err := Run(DesignTLC, "gcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Checkpoints = NewCheckpointStore(0, dir)
	got, err := Run(DesignTLC, "gcc", opt)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("disk-restored run diverged:\n%+v\n%+v", got, want)
	}
	if st := opt.Checkpoints.Stats(); st.DiskHits != 1 {
		t.Fatalf("store stats %+v, want 1 disk hit", st)
	}
	if err := opt.Checkpoints.DiskErr(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointKeySeparatesConfigurations(t *testing.T) {
	// Different designs, benchmarks, warm lengths, and warm seeds must not
	// share checkpoints: each combination warms exactly once.
	store := NewCheckpointStore(0, "")
	opt := ckptOptions()
	opt.WarmInstructions = 200_000
	opt.RunInstructions = 20_000
	opt.Checkpoints = store
	run := func(o Options, d Design, bench string) {
		if _, err := Run(d, bench, o); err != nil {
			t.Fatal(err)
		}
	}
	run(opt, DesignTLC, "gcc")
	run(opt, DesignSNUCA2, "gcc") // different design
	run(opt, DesignTLC, "oltp")   // different bench
	o2 := opt
	o2.WarmInstructions = 300_000
	run(o2, DesignTLC, "gcc") // different warm length
	o3 := opt
	o3.WarmSeed = 99
	run(o3, DesignTLC, "gcc") // different warm seed
	st := store.Stats()
	if st.Puts != 5 || st.Hits != 0 {
		t.Fatalf("store stats %+v, want 5 distinct puts and no hits", st)
	}
}

func TestCheckpointStoreConcurrentRuns(t *testing.T) {
	// Many goroutines sharing one store across designs and benchmarks:
	// exercised by `go test -race`, and every result must match the
	// single-threaded plain run.
	store := NewCheckpointStore(0, "")
	opt := Options{WarmInstructions: 300_000, RunInstructions: 30_000, Seed: 1}
	type cell struct {
		d     Design
		bench string
	}
	cells := []cell{
		{DesignTLC, "gcc"}, {DesignSNUCA2, "gcc"}, {DesignDNUCA, "gcc"},
		{DesignTLC, "oltp"}, {DesignTLCOpt500, "gcc"},
	}
	want := make(map[cell]Result)
	for _, c := range cells {
		r, err := Run(c.d, c.bench, opt)
		if err != nil {
			t.Fatal(err)
		}
		want[c] = r
	}
	copt := opt
	copt.Checkpoints = store
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for _, c := range cells {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				r, err := Run(c.d, c.bench, copt)
				if err != nil {
					t.Error(err)
					return
				}
				if r != want[c] {
					t.Errorf("%s/%s: concurrent checkpointed run diverged", c.d, c.bench)
				}
			}()
		}
	}
	wg.Wait()
}

func TestRunSeedsDeterministicAndSkipsWarm(t *testing.T) {
	opt := Options{WarmInstructions: 500_000, RunInstructions: 50_000}
	seeds := []int64{1, 2, 3}
	c1, l1, m1, err := RunSeeds(DesignTLC, "gcc", opt, seeds)
	if err != nil {
		t.Fatal(err)
	}
	c2, l2, m2, err := RunSeeds(DesignTLC, "gcc", opt, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 || l1 != l2 || m1 != m2 {
		t.Fatal("RunSeeds is not deterministic across invocations")
	}

	// With a caller-provided store, only the first seed warms: seeds share
	// the WarmSeed-keyed checkpoint, so N seeds cost 1 put + N-1 hits (the
	// first run both misses and puts).
	opt.Checkpoints = NewCheckpointStore(0, "")
	if _, _, _, err := RunSeeds(DesignTLC, "gcc", opt, seeds); err != nil {
		t.Fatal(err)
	}
	st := opt.Checkpoints.Stats()
	if st.Puts != 1 {
		t.Fatalf("%d warm-ups executed across %d seeds, want 1", st.Puts, len(seeds))
	}
	if st.Hits != uint64(len(seeds)-1) {
		t.Fatalf("%d checkpoint hits, want %d", st.Hits, len(seeds)-1)
	}
}

func TestRunSeedsStatsCorrect(t *testing.T) {
	// SeedStats must be the exact mean/min/max of the individual per-seed
	// runs under the same warm-sharing configuration RunSeeds uses.
	opt := Options{WarmInstructions: 500_000, RunInstructions: 50_000}
	seeds := []int64{1, 2, 3, 4}
	cycles, lookup, misses, err := RunSeeds(DesignTLC, "gcc", opt, seeds)
	if err != nil {
		t.Fatal(err)
	}
	var cs []float64
	single := opt
	single.WarmSeed = seeds[0]
	for _, s := range seeds {
		o := single
		o.Seed = s
		r, err := Run(DesignTLC, "gcc", o)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, float64(r.Cycles))
	}
	var sum, min, max float64
	min, max = cs[0], cs[0]
	for _, v := range cs {
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if cycles.Min != min || cycles.Max != max {
		t.Fatalf("cycles min/max %v/%v, want %v/%v", cycles.Min, cycles.Max, min, max)
	}
	if mean := sum / float64(len(cs)); cycles.Mean != mean {
		t.Fatalf("cycles mean %v, want %v", cycles.Mean, mean)
	}
	if lookup.Min > lookup.Mean || lookup.Mean > lookup.Max {
		t.Fatalf("lookup stats disordered: %+v", lookup)
	}
	if misses.Min > misses.Mean || misses.Mean > misses.Max {
		t.Fatalf("miss stats disordered: %+v", misses)
	}
	if cycles.Spread() < 0 || cycles.Spread() > 0.5 {
		t.Fatalf("cycle spread %v implausible", cycles.Spread())
	}
}
